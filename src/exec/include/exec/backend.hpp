#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hagerup/simulator.hpp"
#include "mw/config.hpp"
#include "mw/metrics.hpp"
#include "mw/result.hpp"
#include "runtime/dls_loop.hpp"

namespace exec {

/// Uniform view of one run of any execution vehicle -- the shared
/// currency of the check invariant catalog and the cross-backend
/// experiment grids.  Chunk/range logs reuse the mw log types;
/// backends without fragmentation (hagerup, runtime) emit one range
/// per chunk.
struct BackendRun {
  std::string backend;  ///< "mw" | "hagerup" | "runtime"
  std::size_t tasks = 0;
  std::size_t timesteps = 1;
  std::size_t workers = 0;
  double makespan = 0.0;
  double total_nominal_work = 0.0;
  std::size_t chunk_count = 0;
  std::size_t tasks_reclaimed = 0;
  std::vector<mw::WorkerStats> worker_stats;
  std::vector<mw::ChunkLogEntry> chunk_log;
  std::vector<mw::ServedRangeEntry> range_log;
  /// Paper metrics, for backends that define them (mw only).
  std::optional<mw::Metrics> metrics;
  /// Virtual-time semantics: chunk issue times and compute times are
  /// exact simulated values (false for the native runtime, whose
  /// wall-clock numbers only support structural invariants).
  bool virtual_time = true;
};

/// The measured values every backend reports -- the per-replica
/// currency of exec::BatchRunner and the sweep records (the summary
/// columns of the reproduced experiments).
struct Measured {
  double makespan = 0.0;
  double avg_wasted_time = 0.0;
  double speedup = 0.0;
  double chunks = 0.0;
};

/// One execution vehicle behind a uniform mw::Config-shaped job spec.
///
/// A Backend instance owns per-backend reusable state (mw::RunContext,
/// hagerup::RunContext, a cached runtime executor), so consecutive
/// runs on the same instance reuse engines and buffers instead of
/// reallocating them.  Instances are NOT thread-safe: use one per
/// thread (exec::BatchRunner keeps a pool).
class Backend {
 public:
  virtual ~Backend() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Throws std::invalid_argument naming what the backend cannot
  /// faithfully express of `config` (e.g. hagerup with timesteps > 1).
  /// run()/measure() validate implicitly.
  virtual void validate(const mw::Config& config) const = 0;

  /// Full uniform record, chunk/range logs forced on -- the check
  /// catalog's input.
  [[nodiscard]] virtual BackendRun run(const mw::Config& config) = 0;

  /// The measured values only, without materializing logs -- the
  /// batch/sweep hot path.  For mw this is exactly
  /// run_simulation + compute_metrics on a reused RunContext.
  [[nodiscard]] virtual Measured measure(const mw::Config& config) = 0;

  /// Makespans/chunk times are exact simulated values (false for the
  /// native runtime, which measures wall clock).
  [[nodiscard]] virtual bool virtual_time() const = 0;

  /// The same config always reproduces bitwise-identical results
  /// (false for the native runtime).  Non-deterministic backends still
  /// sweep/resume correctly (cells are skipped by identity), but their
  /// records are not byte-reproducible.
  [[nodiscard]] virtual bool deterministic() const = 0;
};

/// Construction knobs that only apply to specific backends.
struct BackendOptions {
  /// runtime: cap the executed iteration count (0 = run the full n).
  /// check's fuzzer caps at 2048 to keep native runs fast.
  std::size_t runtime_task_cap = 0;
  /// runtime: cap the spawned thread count (0 = exactly `workers`).
  unsigned runtime_max_threads = 0;
};

/// The known backend names, in canonical (lexicographic) order:
/// "hagerup", "mw", "runtime".
[[nodiscard]] const std::vector<std::string>& backend_names();
[[nodiscard]] bool is_backend_name(std::string_view name);

/// Factory.  Throws std::invalid_argument listing the known names for
/// an unknown `name`.
[[nodiscard]] std::unique_ptr<Backend> make_backend(std::string_view name,
                                                    const BackendOptions& options = {});

/// Whether the named backend has virtual-time semantics
/// (Backend::virtual_time()).  The single classification both
/// exec::BatchRunner (which defers wall-clock jobs to a serial phase)
/// and sweep::SweepRunner (which segments its worklist at wall-clock
/// cells) key off -- they must never diverge, or the sweep's in-order
/// committer stalls buffering behind a job the batch deferred.
[[nodiscard]] bool backend_is_virtual(std::string_view name, const BackendOptions& options = {});

/// Adapters from the native result types (used by the backends, the
/// check tests, and anyone holding a raw simulator result).
[[nodiscard]] BackendRun from_mw(const mw::Config& config, mw::RunResult result);
[[nodiscard]] BackendRun from_hagerup(const hagerup::Config& config,
                                      const hagerup::RunResult& result);
[[nodiscard]] BackendRun from_runtime(std::size_t n, unsigned threads,
                                      const runtime::LoopStats& stats);

}  // namespace exec
