#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/backend.hpp"
#include "mw/config.hpp"
#include "pool/executor.hpp"
#include "stats/summary.hpp"

namespace exec {

/// One configuration of a batch: `replicas` independent runs of
/// `config` on the named execution backend, where replica r runs with
/// seed `config.seed + seed_stride * r`.  This is the repetition
/// dimension of every reproduced experiment (e.g. 1000 runs per cell in
/// the BOLD study, paper Section III-B), now crossed with the paper's
/// execution-vehicle dimension.
struct BatchJob {
  mw::Config config;
  std::size_t replicas = 1;
  std::uint64_t seed_stride = 1;
  /// Execution vehicle: any exec::backend_names() entry ("mw" is the
  /// reference simulator).  The runtime backend ignores the seed (real
  /// threads, wall clock), so its replicas measure run-to-run noise.
  std::string backend = "mw";
};

/// Aggregated outcome of one BatchJob: summary statistics of the
/// paper's measured values over the job's replicas.
struct BatchResult {
  stats::Summary makespan;
  stats::Summary avg_wasted_time;
  stats::Summary speedup;
  stats::Summary chunks;
  /// Per-replica series, retained only with Options::keep_values (the
  /// raw material of distribution plots like paper Figure 9).
  std::vector<double> makespan_values;
  std::vector<double> wasted_values;
};

/// Batched experiment runner -- the single entry point the repro
/// experiments, tools and benches route "run this grid of
/// configurations N times each" through.
///
/// The replicas of all virtual-time jobs are flattened into one index
/// space and claimed from a persistent pool::Executor (an external one
/// via Options::executor, else the process-wide shared pool -- no
/// per-call thread spawn).  Every executor slot keeps one
/// exec::Backend *per backend name*, and those caches live for the
/// runner's lifetime: consecutive run() calls (e.g. the consecutive
/// cells of a sweep) reuse the backends' engines and buffers
/// (mw::RunContext, hagerup::RunContext, the cached runtime executor)
/// instead of reallocating them.  Wall-clock jobs (runtime) are
/// excluded from the pool and run one replica at a time -- each replica
/// spawns its own worker threads and its timings ARE the measurement,
/// so co-running replicas would measure contention, not run-to-run
/// noise.  Results are deterministic for deterministic backends: each
/// replica is seeded purely by (job, replica index), independent of
/// thread scheduling.
///
/// A BatchRunner is NOT thread-safe: one run() at a time per instance
/// (the slot caches assume a single driving thread per region).
class BatchRunner {
 public:
  struct Options {
    unsigned threads = 0;      ///< 0 = the executor's width
    std::size_t grain = 1;     ///< replicas claimed per atomic grab
    bool keep_values = false;  ///< retain per-replica series in the results
    BackendOptions backend;    ///< backend construction knobs
    /// Externally-owned executor to run on (must outlive the runner);
    /// nullptr = pool::Executor::shared().
    pool::Executor* executor = nullptr;
  };

  BatchRunner() = default;
  explicit BatchRunner(Options options) : options_(std::move(options)) {}

  [[nodiscard]] const Options& options() const { return options_; }

  /// Invoked as each job completes (all of its replicas done), from
  /// whichever thread finished the job's last replica -- jobs complete
  /// in unspecified order, so an on_complete that writes output must
  /// order (and lock) itself; see sweep::SweepRunner's in-order
  /// committer.  Throwing from the callback cancels the batch and
  /// rethrows on the calling thread, like a throwing replica.
  using JobCallback = std::function<void(std::size_t job, const BatchResult& result)>;

  /// Run all jobs; result i aggregates jobs[i].  Throws
  /// std::invalid_argument for zero-replica jobs and unknown backends
  /// before running anything.
  [[nodiscard]] std::vector<BatchResult> run(std::span<const BatchJob> jobs,
                                             const JobCallback& on_complete = {}) const;
  /// Convenience for a single job.
  [[nodiscard]] BatchResult run_one(const BatchJob& job) const;

 private:
  [[nodiscard]] Backend& slot_backend(unsigned slot, const std::string& name) const;

  Options options_;
  /// Per-slot Backend instances, keyed by backend name; slot s is only
  /// ever touched by the executor participant holding slot ID s, so no
  /// lock is needed.  mutable: the caches are perf state, not results
  /// -- run() stays const for the many `const BatchRunner` call sites.
  mutable std::vector<std::map<std::string, std::unique_ptr<Backend>, std::less<>>> slots_;
};

}  // namespace exec
