#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dls/params.hpp"
#include "workload/task_times.hpp"

namespace hagerup {

/// Replication of the task-allocation simulator of the BOLD publication
/// (Hagerup 1997), which produced the "values from original publication"
/// side of the paper's Figures 5-8.
///
/// The simulator is direct (no message passing): each of the p workers
/// is a (next-free-time) entry in a priority queue; when a worker
/// becomes free the master immediately computes the next chunk with the
/// configured DLS technique and the worker executes it.  Task execution
/// times are drawn with the replicated erand48/nrand48 generator family
/// ("Task execution times are generated with the aid of the random
/// number generators erand48 and nrand48", paper Section III-B).
///
/// Scheduling overhead: "It was assumed that every scheduling operation
/// takes a fixed amount of time (parameter h).  This scheduling
/// overhead for each scheduling operation was added directly to the
/// simulation times."  With charge_overhead_inline (default), each
/// allocation occupies the requesting worker for h seconds before the
/// chunk executes; the alternative adds h * chunks / p to the average
/// wasted time after the run (the accounting the paper applies to its
/// SimGrid-MSG experiments), provided for the ablation bench.
struct Config {
  dls::Kind technique = dls::Kind::kSS;
  dls::Params params;  ///< p/n forced from pes/tasks below
  std::size_t pes = 1;
  std::size_t tasks = 1;
  std::shared_ptr<const workload::TaskTimeGenerator> workload;
  std::uint64_t seed = 42;
  bool use_rand48 = true;
  bool charge_overhead_inline = true;
  /// Record the full per-chunk log in the result (check::BackendRun
  /// uses it to compare scheduling decisions across simulators).
  bool record_chunk_log = false;
};

/// One entry of the optional chunk log, in allocation order.  Tasks are
/// always served sequentially from the front of [0, n), so `first` is
/// the running task index at allocation time.
struct ChunkLogEntry {
  std::size_t pe = 0;
  std::size_t first = 0;
  std::size_t size = 0;
  double issued_at = 0.0;      ///< virtual time the chunk was allocated
  double work_seconds = 0.0;   ///< aggregate task time of the chunk [s]
};

struct RunResult {
  double makespan = 0.0;
  double total_work = 0.0;            ///< sum of executed task times
  std::size_t chunk_count = 0;
  std::vector<double> compute_time;   ///< per worker
  std::vector<std::size_t> chunks;    ///< per worker
  /// Average wasted time of the run: mean over workers of
  /// (makespan - compute time), which equals idle + overhead per
  /// worker when overhead is charged inline; plus h*chunks/p otherwise.
  double avg_wasted_time = 0.0;
  std::vector<ChunkLogEntry> chunk_log;  ///< filled if Config::record_chunk_log
};

/// Reusable scratch buffers for run(): the task-time buffer (the
/// dominant allocation of a replica at large n) is filled in place via
/// workload generate_into instead of reallocated per run.  Not
/// thread-safe; use one context per thread (exec::BatchRunner keeps one
/// inside each pooled hagerup backend).
struct RunContext {
  std::vector<double> task_times;
};

/// Run one simulation.  Deterministic in Config (including seed).
[[nodiscard]] RunResult run(const Config& config);

/// Same, reusing `context`'s buffers across calls -- the fast path for
/// replicated runs (see exec::Backend).  Bit-identical to the
/// context-free overload.
[[nodiscard]] RunResult run(const Config& config, RunContext& context);

}  // namespace hagerup
