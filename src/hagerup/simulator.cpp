#include "hagerup/simulator.hpp"

#include <queue>
#include <stdexcept>

#include "dls/technique.hpp"
#include "workload/random_source.hpp"

namespace hagerup {
namespace {

struct FreeEvent {
  double time = 0.0;
  std::size_t worker = 0;
  std::size_t done_size = 0;   ///< chunk just finished (0 on first request)
  double done_exec = 0.0;
};

struct Later {
  bool operator()(const FreeEvent& a, const FreeEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.worker > b.worker;  // deterministic tie-break
  }
};

}  // namespace

RunResult run(const Config& config) {
  RunContext context;
  return run(config, context);
}

RunResult run(const Config& config, RunContext& context) {
  if (config.pes == 0) throw std::invalid_argument("Config.pes must be >= 1");
  if (config.tasks == 0) throw std::invalid_argument("Config.tasks must be >= 1");
  if (!config.workload) throw std::invalid_argument("Config.workload is not set");

  dls::Params params = config.params;
  params.p = config.pes;
  params.n = config.tasks;
  const auto technique = dls::make_technique(config.technique, params);

  const std::unique_ptr<workload::RandomSource> rng =
      config.use_rand48 ? std::unique_ptr<workload::RandomSource>(
                              std::make_unique<workload::Rand48Source>(
                                  static_cast<std::uint32_t>(config.seed)))
                        : std::unique_ptr<workload::RandomSource>(
                              std::make_unique<workload::XoshiroSource>(config.seed));
  config.workload->generate_into(context.task_times, config.tasks, *rng);
  const std::vector<double>& task_times = context.task_times;

  RunResult result;
  result.compute_time.assign(config.pes, 0.0);
  result.chunks.assign(config.pes, 0);
  for (double t : task_times) result.total_work += t;

  std::priority_queue<FreeEvent, std::vector<FreeEvent>, Later> queue;
  for (std::size_t w = 0; w < config.pes; ++w) queue.push(FreeEvent{0.0, w, 0, 0.0});

  std::size_t next_task = 0;
  double makespan = 0.0;
  while (!queue.empty()) {
    const FreeEvent ev = queue.top();
    queue.pop();
    makespan = std::max(makespan, ev.time);
    if (ev.done_size > 0) {
      technique->on_chunk_complete(
          dls::ChunkFeedback{ev.worker, ev.done_size, ev.done_exec, ev.time});
    }
    const std::size_t chunk = technique->next_chunk(dls::Request{ev.worker, ev.time});
    if (chunk == 0) continue;  // worker retires
    double exec = 0.0;
    for (std::size_t i = next_task; i < next_task + chunk; ++i) exec += task_times[i];
    if (config.record_chunk_log) {
      result.chunk_log.push_back(ChunkLogEntry{ev.worker, next_task, chunk, ev.time, exec});
    }
    next_task += chunk;
    ++result.chunk_count;
    ++result.chunks[ev.worker];
    result.compute_time[ev.worker] += exec;
    const double overhead = config.charge_overhead_inline ? config.params.h : 0.0;
    queue.push(FreeEvent{ev.time + overhead + exec, ev.worker, chunk, exec});
  }

  result.makespan = makespan;
  double wasted_sum = 0.0;
  for (double c : result.compute_time) wasted_sum += makespan - c;
  if (!config.charge_overhead_inline) {
    wasted_sum += config.params.h * static_cast<double>(result.chunk_count);
  }
  result.avg_wasted_time = wasted_sum / static_cast<double>(config.pes);
  return result;
}

}  // namespace hagerup
