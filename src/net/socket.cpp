#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace net {
namespace {

[[nodiscard]] std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void make_nonblocking_cloexec(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

void set_nodelay(int fd) {
  // Control messages are tens of bytes; Nagle would serialize the
  // lease/heartbeat chatter behind the data chunks.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

[[nodiscard]] sockaddr_in resolve(const HostPort& address) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  const std::string host = address.host.empty() ? "0.0.0.0" : address.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  // Not a dotted quad: resolve the name (localhost, cluster DNS, ...).
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &results);
  if (rc != 0 || results == nullptr) {
    throw std::runtime_error("cannot resolve host '" + host + "': " + ::gai_strerror(rc));
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
  ::freeaddrinfo(results);
  return addr;
}

}  // namespace

HostPort parse_host_port(std::string_view text) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos) {
    throw std::invalid_argument("address must be host:port, got '" + std::string(text) + "'");
  }
  HostPort out;
  out.host = std::string(text.substr(0, colon));
  const std::string_view port_text = text.substr(colon + 1);
  unsigned port = 0;
  const auto [ptr, ec] =
      std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc() || ptr != port_text.data() + port_text.size() || port_text.empty() ||
      port > 65535) {
    throw std::invalid_argument("malformed port in '" + std::string(text) + "'");
  }
  out.port = static_cast<std::uint16_t>(port);
  return out;
}

Listener::Listener(const HostPort& address) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error(errno_message("socket"));
  const int one = 1;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = resolve(address);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = errno_message("bind " + address.host + ":" +
                                              std::to_string(address.port));
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(message);
  }
  if (::listen(fd_, 64) != 0) {
    const std::string message = errno_message("listen");
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(message);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string message = errno_message("getsockname");
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(message);
  }
  port_ = ntohs(addr.sin_port);
  make_nonblocking_cloexec(fd_);
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
}

int Listener::accept_nonblocking() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      make_nonblocking_cloexec(fd);
      set_nodelay(fd);
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    // A connection that died between arrival and accept is not an
    // accept-loop failure.
    if (errno == ECONNABORTED) continue;
    throw std::runtime_error(errno_message("accept"));
  }
}

int connect_with_retry(const HostPort& address, std::size_t attempts,
                       std::chrono::milliseconds backoff) {
  const sockaddr_in addr = resolve(address);
  std::string last_error;
  for (std::size_t attempt = 0; attempt < std::max<std::size_t>(attempts, 1); ++attempt) {
    // Bounded by the caller's attempt budget; connect retry backoff is
    // the one place a flat nap is the right tool (nothing to wait on --
    // the peer simply isn't listening yet).
    // dls-lint: allow(unbounded-sleep)
    if (attempt != 0 && backoff.count() > 0) std::this_thread::sleep_for(backoff);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error(errno_message("socket"));
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc == 0) {
      make_nonblocking_cloexec(fd);
      set_nodelay(fd);
      return fd;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  throw std::runtime_error("cannot connect to " + address.host + ":" +
                           std::to_string(address.port) + " after " + std::to_string(attempts) +
                           " attempt(s): " + last_error);
}

}  // namespace net
