#include "net/frame.hpp"

#include <utility>

namespace net {

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(payload.size() + 12);
  out += '#';
  out += std::to_string(payload.size());
  out += '\n';
  out.append(payload.data(), payload.size());
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_payload) : max_payload_(max_payload) {}

bool FrameDecoder::fail(std::string message) {
  state_ = State::dead;
  error_ = std::move(message);
  header_.clear();
  payload_.clear();
  need_ = 0;
  return false;
}

std::size_t FrameDecoder::awaiting_bytes() const {
  return state_ == State::payload ? need_ - payload_.size() : 0;
}

bool FrameDecoder::mid_frame() const {
  if (state_ == State::payload) return true;
  return state_ == State::header && (saw_hash_ || !header_.empty());
}

bool FrameDecoder::feed(std::string_view bytes, std::vector<std::string>& out) {
  if (state_ == State::dead) return false;
  std::size_t i = 0;
  while (i < bytes.size()) {
    if (state_ == State::header) {
      const char c = bytes[i++];
      if (!saw_hash_) {
        if (c != '#') return fail("frame: expected '#', got byte " + std::to_string(int(static_cast<unsigned char>(c))));
        saw_hash_ = true;
        continue;
      }
      if (c == '\n') {
        if (header_.empty()) return fail("frame: empty length header");
        // header_ is all digits with at most kMaxFrameHeaderDigits of
        // them, so this cannot overflow std::size_t.
        std::size_t length = 0;
        for (const char d : header_) length = length * 10 + static_cast<std::size_t>(d - '0');
        if (length == 0) return fail("frame: zero-length frame");
        if (length > max_payload_) {
          return fail("frame: declared payload of " + std::to_string(length) +
                      " bytes exceeds the " + std::to_string(max_payload_) + "-byte cap");
        }
        header_.clear();
        saw_hash_ = false;
        need_ = length;
        payload_.clear();
        state_ = State::payload;
        continue;
      }
      if (c < '0' || c > '9') {
        return fail("frame: non-digit byte " + std::to_string(int(static_cast<unsigned char>(c))) +
                    " in length header");
      }
      if (header_.size() >= kMaxFrameHeaderDigits) {
        return fail("frame: length header longer than " +
                    std::to_string(kMaxFrameHeaderDigits) + " digits");
      }
      header_ += c;
      continue;
    }
    // State::payload
    const std::size_t take = std::min(bytes.size() - i, need_ - payload_.size());
    payload_.append(bytes.data() + i, take);
    i += take;
    if (payload_.size() == need_) {
      out.push_back(std::move(payload_));
      payload_.clear();
      need_ = 0;
      state_ = State::header;
    }
  }
  return true;
}

void LineDecoder::feed(std::string_view bytes, std::vector<std::string>& out) {
  std::size_t start = 0;
  for (;;) {
    const auto newline = bytes.find('\n', start);
    if (newline == std::string_view::npos) {
      buffer_.append(bytes.data() + start, bytes.size() - start);
      return;
    }
    buffer_.append(bytes.data() + start, newline - start);
    out.push_back(std::move(buffer_));
    buffer_.clear();
    start = newline + 1;
  }
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace net
