#include "net/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace net {
namespace {

/// Write all of `bytes` to a nonblocking fd, waiting for POLLOUT up to
/// `deadline` when the kernel buffer is full.  Returns false on peer
/// loss or deadline expiry -- a remote worker that stops reading for
/// that long is as dead as one that hung up.  `socket` selects
/// ::send(MSG_NOSIGNAL) so a hung-up TCP peer yields EPIPE instead of
/// SIGPIPE regardless of the process's signal disposition (pipes have
/// no such flag; their callers ignore SIGPIPE process-wide).
bool write_all(int fd, std::string_view bytes, std::chrono::milliseconds deadline, bool socket) {
  const auto give_up_at = std::chrono::steady_clock::now() + deadline;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        socket ? ::send(fd, bytes.data() + written, bytes.size() - written, MSG_NOSIGNAL)
               : ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n > 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= give_up_at) return false;
      pollfd pfd{fd, POLLOUT, 0};
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(give_up_at - now);
      const int rc = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(remaining.count(), 1)));
      if (rc < 0 && errno != EINTR) return false;
      continue;
    }
    return false;  // EPIPE, ECONNRESET, ...
  }
  return true;
}

}  // namespace

Transport::RecvStatus Transport::recv(std::string& out, std::chrono::milliseconds timeout) {
  const auto give_up_at = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (!pending_.empty()) {
      out = std::move(pending_.front());
      pending_.pop_front();
      return RecvStatus::ok;
    }
    if (recv_closed_) return RecvStatus::closed;
    const auto now = std::chrono::steady_clock::now();
    if (now >= give_up_at) return RecvStatus::timeout;
    pollfd pfd{poll_fd(), POLLIN, 0};
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(give_up_at - now);
    const int rc = ::poll(&pfd, 1, static_cast<int>(std::max<long long>(remaining.count(), 1)));
    if (rc < 0) {
      if (errno == EINTR) continue;
      recv_closed_ = true;
      return RecvStatus::closed;
    }
    if (rc == 0) return RecvStatus::timeout;
    std::vector<std::string> messages;
    const bool open = drain(messages);
    for (auto& message : messages) pending_.push_back(std::move(message));
    if (!open) recv_closed_ = true;
  }
}

PipeTransport::PipeTransport(int read_fd, int write_fd) : read_fd_(read_fd), write_fd_(write_fd) {
  if (read_fd_ >= 0) {
    ::fcntl(read_fd_, F_SETFL, ::fcntl(read_fd_, F_GETFL, 0) | O_NONBLOCK);
  }
}

PipeTransport::~PipeTransport() { shutdown(); }

bool PipeTransport::send(std::string_view message) {
  const support::LockGuard lock(mutex_);
  if (write_fd_ < 0) return false;
  std::string wire(message);
  wire += '\n';
  return write_all(write_fd_, wire, std::chrono::seconds(10), /*socket=*/false);
}

bool PipeTransport::drain(std::vector<std::string>& out) {
  if (finished_) return false;
  int fd = -1;
  {
    // Snapshot the fd; the read loop itself must not hold the lock (a
    // send() blocked on a full kernel buffer would stall the caller's
    // whole poll loop).  A shutdown() racing the loop turns the read
    // into EBADF, which lands in the EOF/error branch below.
    const support::LockGuard lock(mutex_);
    fd = read_fd_;
  }
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)), out);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    // EOF or hard error: flush any unterminated final line so a
    // mid-line death still surfaces the bytes (the parser will reject
    // a truncated message and the caller records a protocol death).
    finished_ = true;
    if (!decoder_.trailing().empty()) out.push_back(decoder_.trailing());
    return false;
  }
}

void PipeTransport::shutdown() {
  const support::LockGuard lock(mutex_);
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0) ::close(write_fd_);
  read_fd_ = -1;
  write_fd_ = -1;
}

std::string PipeTransport::describe() const { return "pipe"; }

SocketTransport::SocketTransport(int fd, std::chrono::milliseconds write_deadline)
    : fd_(fd), write_deadline_(write_deadline) {}

SocketTransport::~SocketTransport() { shutdown(); }

bool SocketTransport::send(std::string_view message) {
  const support::LockGuard lock(mutex_);
  if (fd_ < 0) return false;
  return write_all(fd_, encode_frame(message), write_deadline_, /*socket=*/true);
}

bool SocketTransport::drain(std::vector<std::string>& out) {
  if (finished_) return false;
  int fd = -1;
  {
    // Same fd-snapshot discipline as PipeTransport::drain.
    const support::LockGuard lock(mutex_);
    fd = fd_;
  }
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n > 0) {
      if (!decoder_.feed(std::string_view(buffer, static_cast<std::size_t>(n)), out)) {
        finished_ = true;
        error_ = decoder_.error();
        return false;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    finished_ = true;
    if (n < 0) {
      error_ = "read: " + std::string(std::strerror(errno));
    } else if (decoder_.mid_frame()) {
      // Clean FIN but a frame was in flight: the peer died mid-send.
      error_ = "eof mid-frame";
    }
    return false;
  }
}

void SocketTransport::shutdown() {
  const support::LockGuard lock(mutex_);
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::string SocketTransport::describe() const {
  const support::LockGuard lock(mutex_);
  return "tcp:fd=" + std::to_string(fd_);
}

}  // namespace net
