#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.hpp"
#include "support/thread_annotations.hpp"

namespace net {

/// Transport-agnostic message link between a sweep coordinator and one
/// worker.  Two implementations: PipeTransport (stdin/stdout pipes to
/// a forked local worker, newline framing -- PR 6's wire format,
/// unchanged) and SocketTransport (one TCP fd to a remote worker,
/// length-delimited frames from net/frame.hpp).  The coordinator and
/// worker loops only ever see this interface, so lease logic cannot
/// diverge between local and distributed runs.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Send one protocol message (no trailing newline; the transport
  /// frames it).  Thread-safe: the worker's heartbeat thread and main
  /// loop share one link.  Returns false once the peer is gone --
  /// callers treat that like a death and let the read side report it.
  [[nodiscard]] virtual bool send(std::string_view message) = 0;

  /// The fd to poll for readability (POLLIN) -- the coordinator
  /// multiplexes many links through one poll() set.
  [[nodiscard]] virtual int poll_fd() const = 0;

  /// Nonblocking read: decode everything currently buffered by the
  /// kernel and append complete messages to `out`.  Returns false when
  /// the peer is finished -- either cleanly (EOF, error() == "") or
  /// because the byte stream was garbage (error() nonempty).  Messages
  /// decoded before the failure are still appended.
  [[nodiscard]] virtual bool drain(std::vector<std::string>& out) = 0;

  /// Tear the link down now (close fds).  Idempotent.  This is the
  /// socket-side analogue of SIGKILL: a coordinator that would kill a
  /// misbehaving local worker instead hangs up on a remote one.
  virtual void shutdown() = 0;

  /// Why drain() returned false: empty for a clean EOF, a framing
  /// diagnostic for a corrupt stream.
  [[nodiscard]] virtual const std::string& error() const = 0;

  /// Human-readable peer label for logs ("pipe", "tcp:fd=7", ...).
  [[nodiscard]] virtual std::string describe() const = 0;

  enum class RecvStatus { ok, timeout, closed };

  /// Blocking single-message receive with a timeout, built on
  /// poll_fd()+drain() with an internal queue.  The worker side's main
  /// loop uses this; the coordinator never does (it poll()s many links
  /// at once and calls drain() directly -- mixing the two on one link
  /// would strand messages in the internal queue).
  [[nodiscard]] RecvStatus recv(std::string& out, std::chrono::milliseconds timeout);

 protected:
  std::deque<std::string> pending_;  ///< recv() lookahead only
  bool recv_closed_ = false;
};

/// The PR 6 wire: newline-terminated ASCII over a pipe pair.  Owns
/// both fds; the read side is made nonblocking on construction.
class PipeTransport final : public Transport {
 public:
  /// `read_fd` carries peer->us bytes, `write_fd` us->peer.
  PipeTransport(int read_fd, int write_fd);
  ~PipeTransport() override;

  [[nodiscard]] bool send(std::string_view message) override DLS_EXCLUDES(mutex_);
  [[nodiscard]] int poll_fd() const override DLS_EXCLUDES(mutex_) {
    const support::LockGuard lock(mutex_);
    return read_fd_;
  }
  [[nodiscard]] bool drain(std::vector<std::string>& out) override DLS_EXCLUDES(mutex_);
  void shutdown() override DLS_EXCLUDES(mutex_);
  [[nodiscard]] const std::string& error() const override { return error_; }
  [[nodiscard]] std::string describe() const override;

 private:
  /// Guards the fds (send() vs shutdown() cross-thread) and
  /// serializes whole sends so concurrent messages never interleave
  /// mid-line.  The decoder state below is NOT under it: drain() and
  /// error() belong to the single read-side thread by contract.
  mutable support::Mutex mutex_;
  int read_fd_ DLS_GUARDED_BY(mutex_);
  int write_fd_ DLS_GUARDED_BY(mutex_);
  LineDecoder decoder_;  ///< read-side thread only
  std::string error_;    ///< read-side thread only
  bool finished_ = false;  ///< read-side thread only
};

/// One connected TCP socket carrying length-delimited frames.  Owns
/// the fd (nonblocking; see net/socket.hpp for how it is minted).
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(int fd,
                           std::chrono::milliseconds write_deadline = std::chrono::seconds(10));
  ~SocketTransport() override;

  [[nodiscard]] bool send(std::string_view message) override DLS_EXCLUDES(mutex_);
  [[nodiscard]] int poll_fd() const override DLS_EXCLUDES(mutex_) {
    const support::LockGuard lock(mutex_);
    return fd_;
  }
  [[nodiscard]] bool drain(std::vector<std::string>& out) override DLS_EXCLUDES(mutex_);
  void shutdown() override DLS_EXCLUDES(mutex_);
  [[nodiscard]] const std::string& error() const override { return error_; }
  [[nodiscard]] std::string describe() const override DLS_EXCLUDES(mutex_);

 private:
  /// Same split as PipeTransport: mutex_ guards the fd and serializes
  /// whole frames; decoder state is read-side-thread-only.
  mutable support::Mutex mutex_;
  int fd_ DLS_GUARDED_BY(mutex_);
  std::chrono::milliseconds write_deadline_;
  FrameDecoder decoder_;   ///< read-side thread only
  std::string error_;      ///< read-side thread only
  bool finished_ = false;  ///< read-side thread only
};

}  // namespace net
