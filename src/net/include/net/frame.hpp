#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace net {

/// Length-delimited framing for the socket transport (dls::net).
///
/// The dist protocol is newline-terminated ASCII on pipes, but a TCP
/// stream between hosts also has to carry binary payloads (the SPEC
/// text with its embedded newlines, the FETCH data chunks), so on
/// sockets every message rides in a length-delimited frame:
///
///   '#' <decimal payload length> '\n' <payload bytes>
///
/// The header is ASCII so a wire capture stays eyeballable; the
/// payload is arbitrary bytes.  Frames are hard-bounded: a declared
/// length of zero or one above kMaxFramePayload is a framing error
/// (an oversized length prefix must not become an allocation bomb),
/// as is any header that is not '#' + digits + '\n'.  A garbled frame
/// stream is a failed peer -- the decoder latches the error and
/// refuses further input, exactly like the line protocol's
/// malformed-message handling.
constexpr std::size_t kMaxFramePayload = 4u * 1024u * 1024u;

/// Longest legal header digit run: kMaxFramePayload has 7 digits; one
/// spare digit keeps the bound orthogonal to the cap check.
constexpr std::size_t kMaxFrameHeaderDigits = 8;

[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder: feed() arbitrary byte slices, complete
/// payloads are appended to `out`.  Returns false once the stream is
/// irrecoverably malformed (error() says why); the decoder stays dead
/// from then on.  A partial frame at the end of the fed bytes is not
/// an error -- it is simply awaiting more input (awaiting_bytes()
/// says how many payload bytes are still outstanding).
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload);

  [[nodiscard]] bool feed(std::string_view bytes, std::vector<std::string>& out);

  [[nodiscard]] bool failed() const { return state_ == State::dead; }
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Payload bytes still needed to finish the frame in progress
  /// (0 when between frames or dead).
  [[nodiscard]] std::size_t awaiting_bytes() const;
  /// True while a partially-received frame (header or payload) sits in
  /// the decoder -- an EOF here means the peer died mid-frame.
  [[nodiscard]] bool mid_frame() const;

 private:
  enum class State { header, payload, dead };

  bool fail(std::string message);

  State state_ = State::header;
  std::size_t max_payload_;
  std::string header_;   ///< digits collected so far (without '#')
  bool saw_hash_ = false;
  std::size_t need_ = 0;
  std::string payload_;
  std::string error_;
};

/// Incremental newline splitter -- the pipe transport's "framing".
/// Bytes accumulate until '\n'; complete lines (without the newline)
/// are appended to `out`.  Unlike FrameDecoder it cannot fail: any
/// byte sequence is a valid prefix of some line stream.  trailing()
/// exposes the unterminated tail (an EOF with a nonempty tail is a
/// peer that died mid-line).
class LineDecoder {
 public:
  void feed(std::string_view bytes, std::vector<std::string>& out);
  [[nodiscard]] const std::string& trailing() const { return buffer_; }

 private:
  std::string buffer_;
};

/// FNV-1a 64-bit -- the dependency-free checksum the FETCH data path
/// verifies streamed stripes with (alongside the byte length).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace net
