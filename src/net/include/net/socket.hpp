#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace net {

/// Plain TCP plumbing for the distributed sweep (dls::net): an
/// address parser, a nonblocking listener, and a blocking connector
/// with retry/backoff.  IPv4 only, no external dependencies -- the
/// cluster front ends this serves are `dls_sweep serve`/`work`.

struct HostPort {
  std::string host;  ///< numeric dotted quad or a resolvable name
  std::uint16_t port = 0;
};

/// Parse "host:port" ("" host = 0.0.0.0; port 0 = kernel-assigned for
/// listeners).  Throws std::invalid_argument on malformed input.
[[nodiscard]] HostPort parse_host_port(std::string_view text);

/// Listening TCP socket: bind + listen, nonblocking accept.  The fd is
/// nonblocking and close-on-exec, so a coordinator that forks local
/// workers never leaks its listener into them.
class Listener {
 public:
  /// Throws std::runtime_error (errno message) on bind/listen failure.
  explicit Listener(const HostPort& address);
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  /// The bound port -- the kernel's pick when the address asked for 0.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// One nonblocking accept: the connection fd (nonblocking,
  /// close-on-exec, TCP_NODELAY) or -1 when no connection is pending.
  /// Throws std::runtime_error on a real accept error.
  [[nodiscard]] int accept_nonblocking();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Blocking connect with capped linear retry: a worker launched before
/// (or during a restart of) its coordinator keeps knocking instead of
/// failing the whole host's share of the sweep.  Returns a connected
/// fd (nonblocking, close-on-exec, TCP_NODELAY); throws
/// std::runtime_error naming the address after `attempts` failures.
[[nodiscard]] int connect_with_retry(const HostPort& address, std::size_t attempts,
                                     std::chrono::milliseconds backoff);

}  // namespace net
