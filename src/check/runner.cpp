#include "check/runner.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <ostream>

#include "check/backend.hpp"
#include "support/parallel_for.hpp"
#include "workload/task_times.hpp"

namespace check {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A scenario whose execution itself throws is reported as a violation
/// of the implicit "runs at all" invariant.
std::vector<Failure> guarded_check(const Scenario& scenario, bool expensive,
                                   bool check_runtime) {
  try {
    return check_scenario(scenario, expensive, check_runtime);
  } catch (const std::exception& e) {
    return {Failure{"runs", std::string("backend threw: ") + e.what()}};
  }
}

/// Candidate shrinking transformations, most aggressive first.  Each
/// returns false when it cannot simplify the scenario further.
using Transform = bool (*)(Scenario&);

bool drop_timesteps(Scenario& s) {
  if (s.config.timesteps == 1) return false;
  s.config.timesteps = 1;
  return true;
}

bool halve_tasks(Scenario& s) {
  if (s.config.tasks <= 1) return false;
  s.config.tasks /= 2;
  return true;
}

bool halve_workers(Scenario& s) {
  mw::Config& cfg = s.config;
  if (cfg.workers <= 1) return false;
  cfg.workers /= 2;
  auto shrink = [&](auto& v) {
    if (!v.empty()) v.resize(cfg.workers);
  };
  shrink(cfg.worker_speed_factors);
  shrink(cfg.worker_speed_profiles);
  shrink(cfg.worker_failure_times);
  shrink(cfg.params.weights);
  // Keep the at-least-one-survivor contract after truncation.
  if (!cfg.worker_failure_times.empty()) cfg.worker_failure_times.front() = kInf;
  return true;
}

bool drop_failures(Scenario& s) {
  if (s.config.worker_failure_times.empty()) return false;
  s.config.worker_failure_times.clear();
  return true;
}

bool drop_profiles(Scenario& s) {
  if (s.config.worker_speed_profiles.empty()) return false;
  s.config.worker_speed_profiles.clear();
  return true;
}

bool drop_factors(Scenario& s) {
  if (s.config.worker_speed_factors.empty()) return false;
  s.config.worker_speed_factors.clear();
  return true;
}

bool drop_overhead(Scenario& s) {
  if (s.config.params.h == 0.0 && s.config.overhead_mode == mw::OverheadMode::kAnalytic) {
    return false;
  }
  s.config.params.h = 0.0;
  s.config.overhead_mode = mw::OverheadMode::kAnalytic;
  return true;
}

bool null_the_network(Scenario& s) {
  if (s.null_network) return false;
  s.config.latency = 0.0;
  s.config.bandwidth = kInf;
  return true;
}

bool simplify_workload(Scenario& s) {
  if (s.config.workload && s.config.workload->stddev() == 0.0 &&
      s.config.workload->mean() == 1.0) {
    return false;
  }
  s.config.workload = workload::from_spec("constant:1");
  s.config.params.mu = 1.0;
  s.config.params.sigma = 0.0;
  return true;
}

bool drop_rand48(Scenario& s) {
  if (!s.config.use_rand48) return false;
  s.config.use_rand48 = false;
  return true;
}

constexpr Transform kTransforms[] = {
    drop_timesteps, halve_tasks,      halve_workers, drop_failures, drop_profiles,
    drop_factors,   drop_overhead,    null_the_network, simplify_workload, drop_rand48,
};

}  // namespace

std::vector<Failure> check_scenario(const Scenario& scenario, bool expensive,
                                    bool check_runtime) {
  std::vector<Failure> failures;
  const BackendRun mw_run = run_mw(scenario);
  for (Failure& f : check_run(scenario, mw_run)) failures.push_back(std::move(f));

  if (scenario.hagerup_comparable()) {
    const BackendRun hagerup_run = run_hagerup(scenario);
    for (Failure& f : check_run(scenario, hagerup_run)) failures.push_back(std::move(f));
    if (auto violation = check_cross_backend(scenario, mw_run, hagerup_run)) {
      failures.push_back(Failure{"cross_backend", *violation});
    }
  }

  if (check_runtime) {
    const BackendRun runtime_run = run_runtime(scenario);
    for (Failure& f : check_run(scenario, runtime_run)) failures.push_back(std::move(f));
  }

  if (expensive) {
    if (auto violation = check_mw_determinism(scenario, mw_run)) {
      failures.push_back(Failure{"mw_determinism", *violation});
    }
    if (auto violation = check_batch_determinism(scenario)) {
      failures.push_back(Failure{"batch_determinism", *violation});
    }
    if (auto violation = check_worker_monotonicity(scenario)) {
      failures.push_back(Failure{"worker_monotonicity", *violation});
    }
  }
  return failures;
}

Scenario minimize_scenario(const Scenario& scenario,
                           const std::function<bool(const Scenario&)>& still_fails,
                           std::size_t budget) {
  Scenario best = scenario;
  bool progress = true;
  while (progress && budget > 0) {
    progress = false;
    for (const Transform& transform : kTransforms) {
      if (budget == 0) break;
      Scenario candidate = best;
      if (!transform(candidate)) continue;
      classify(candidate);
      --budget;
      bool fails = false;
      try {
        fails = still_fails(candidate);
      } catch (const std::exception&) {
        fails = true;  // crashing counts as still failing
      }
      if (fails) {
        best = std::move(candidate);
        progress = true;
      }
    }
  }
  return best;
}

CheckReport run_checks(const CheckOptions& options) {
  CheckReport report;
  report.scenarios = options.runs;
  std::vector<std::vector<Violation>> per_scenario(options.runs);

  support::parallel_for(
      options.runs,
      [&](std::size_t index) {
        const Scenario scenario = generate_scenario(options.seed, index, options.scenario);
        const bool expensive =
            options.expensive_stride != 0 && index % options.expensive_stride == 0;
        for (const Failure& failure :
             guarded_check(scenario, expensive, options.check_runtime)) {
          Violation violation;
          violation.scenario_index = index;
          violation.invariant = failure.invariant;
          violation.message = failure.message;
          Scenario reported = scenario;
          if (options.minimize) {
            const std::string& name = failure.invariant;
            reported = minimize_scenario(
                scenario,
                [&](const Scenario& candidate) {
                  for (const Failure& f :
                       guarded_check(candidate, expensive, options.check_runtime)) {
                    if (f.invariant == name) return true;
                  }
                  return false;
                },
                options.shrink_budget);
          }
          try {
            violation.experiment_text = to_experiment_text(reported);
          } catch (const std::exception& e) {
            violation.experiment_text = "# not expressible as an experiment file: ";
            violation.experiment_text += e.what();
          }
          per_scenario[index].push_back(std::move(violation));
        }
      },
      options.threads);

  for (std::vector<Violation>& violations : per_scenario) {
    for (Violation& violation : violations) report.violations.push_back(std::move(violation));
  }
  return report;
}

bool print_report(const CheckReport& report, std::ostream& out) {
  if (report.ok()) {
    out << "dls_check: " << report.scenarios << " scenarios, all invariants hold\n";
    return true;
  }
  out << "dls_check: " << report.violations.size() << " violation(s) across "
      << report.scenarios << " scenarios\n";
  for (const Violation& violation : report.violations) {
    out << "\n--- scenario " << violation.scenario_index << ": invariant '"
        << violation.invariant << "' violated\n"
        << "    " << violation.message << "\n"
        << "    minimized replayable experiment:\n";
    // Indent the experiment text so a report with several violations
    // stays scannable; the block still pastes cleanly into dls_sim.
    std::size_t start = 0;
    while (start < violation.experiment_text.size()) {
      const std::size_t end = violation.experiment_text.find('\n', start);
      const std::size_t stop = end == std::string::npos ? violation.experiment_text.size() : end;
      out << "      " << violation.experiment_text.substr(start, stop - start) << "\n";
      start = stop + 1;
    }
  }
  return false;
}

}  // namespace check
