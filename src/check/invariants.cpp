#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "exec/batch.hpp"
#include "mw/simulation.hpp"
#include "support/table.hpp"
#include "workload/random_source.hpp"
#include "workload/task_times.hpp"

namespace check {
namespace {

/// Relative slack for comparisons between independently accumulated
/// floating-point sums (different summation orders differ in ulps).
constexpr double kRelTol = 1e-9;

bool close(double a, double b, double rel = kRelTol) {
  return std::abs(a - b) <= rel * std::max({1.0, std::abs(a), std::abs(b)});
}

std::string fmt(double v) { return support::fmt_shortest(v); }

bool any_failure(const BackendRun& run) {
  if (run.tasks_reclaimed > 0) return true;
  for (const mw::WorkerStats& w : run.worker_stats) {
    if (w.failed) return true;
  }
  return false;
}

/// The same RNG the simulators build (mw/simulation.cpp, hagerup).
std::unique_ptr<workload::RandomSource> make_rng(const mw::Config& cfg) {
  if (cfg.use_rand48) {
    return std::make_unique<workload::Rand48Source>(static_cast<std::uint32_t>(cfg.seed));
  }
  return std::make_unique<workload::XoshiroSource>(cfg.seed);
}

/// Ranges of chunk `c`, pulled from the (chunk-ordered) range log.
/// `cursor` advances across calls in chunk order.
void ranges_of_chunk(const BackendRun& run, std::size_t c, std::size_t& cursor,
                     std::vector<mw::ServedRangeEntry>& out) {
  out.clear();
  while (cursor < run.range_log.size() && run.range_log[cursor].chunk == c) {
    out.push_back(run.range_log[cursor]);
    ++cursor;
  }
}

}  // namespace

std::optional<std::string> check_chunk_bounds(const BackendRun& run) {
  if (run.chunk_count != run.chunk_log.size()) {
    return "chunk_count " + std::to_string(run.chunk_count) + " != chunk log length " +
           std::to_string(run.chunk_log.size());
  }
  std::size_t cursor = 0;
  std::vector<mw::ServedRangeEntry> ranges;
  for (std::size_t c = 0; c < run.chunk_log.size(); ++c) {
    const mw::ChunkLogEntry& chunk = run.chunk_log[c];
    if (chunk.size == 0) return "chunk " + std::to_string(c) + " has size 0";
    if (chunk.pe >= run.workers) {
      return "chunk " + std::to_string(c) + " served to out-of-range pe " +
             std::to_string(chunk.pe);
    }
    ranges_of_chunk(run, c, cursor, ranges);
    if (ranges.empty()) return "chunk " + std::to_string(c) + " has no served ranges";
    std::size_t total = 0;
    for (const mw::ServedRangeEntry& r : ranges) {
      if (r.count == 0) return "chunk " + std::to_string(c) + " has an empty range";
      if (r.first + r.count > run.tasks) {
        return "chunk " + std::to_string(c) + " range [" + std::to_string(r.first) + ", " +
               std::to_string(r.first + r.count) + ") exceeds n = " + std::to_string(run.tasks);
      }
      total += r.count;
    }
    if (total != chunk.size) {
      return "chunk " + std::to_string(c) + " ranges sum to " + std::to_string(total) +
             ", chunk size is " + std::to_string(chunk.size);
    }
    if (chunk.first != ranges.front().first) {
      return "chunk " + std::to_string(c) + " first " + std::to_string(chunk.first) +
             " != leading range first " + std::to_string(ranges.front().first);
    }
  }
  if (cursor != run.range_log.size()) {
    return "range log has " + std::to_string(run.range_log.size() - cursor) +
           " trailing entries referencing no chunk";
  }
  return std::nullopt;
}

std::optional<std::string> check_coverage(const BackendRun& run) {
  if (any_failure(run)) return std::nullopt;  // exact cover needs failure-free runs
  std::size_t cursor = 0;
  std::vector<mw::ServedRangeEntry> chunk_ranges;
  std::vector<std::pair<std::size_t, std::size_t>> step;  // (first, count)
  std::size_t step_total = 0;
  std::size_t steps_done = 0;
  for (std::size_t c = 0; c < run.chunk_log.size(); ++c) {
    ranges_of_chunk(run, c, cursor, chunk_ranges);
    for (const mw::ServedRangeEntry& r : chunk_ranges) {
      step.emplace_back(r.first, r.count);
      step_total += r.count;
    }
    if (step_total > run.tasks) {
      return "step " + std::to_string(steps_done) + " serves " + std::to_string(step_total) +
             " tasks, more than n = " + std::to_string(run.tasks) + " (chunk " +
             std::to_string(c) + " overlaps or overflows)";
    }
    if (step_total == run.tasks) {
      std::sort(step.begin(), step.end());
      std::size_t expect = 0;
      for (const auto& [first, count] : step) {
        if (first != expect) {
          return "step " + std::to_string(steps_done) + ": range starting at " +
                 std::to_string(first) + " but expected " + std::to_string(expect) +
                 (first < expect ? " (overlap)" : " (gap)");
        }
        expect = first + count;
      }
      step.clear();
      step_total = 0;
      ++steps_done;
    }
  }
  if (step_total != 0) {
    return "trailing partial step: " + std::to_string(step_total) + " of " +
           std::to_string(run.tasks) + " tasks served";
  }
  if (steps_done != run.timesteps) {
    return "chunk log covers " + std::to_string(steps_done) + " timesteps, config has " +
           std::to_string(run.timesteps);
  }
  return std::nullopt;
}

std::optional<std::string> check_conservation(const BackendRun& run) {
  const std::size_t expected = run.tasks * run.timesteps;
  std::size_t completed = 0;
  std::size_t chunks = 0;
  for (const mw::WorkerStats& w : run.worker_stats) {
    completed += w.tasks;
    chunks += w.chunks;
  }
  if (completed != expected) {
    return "workers completed " + std::to_string(completed) + " tasks, expected n * timesteps = " +
           std::to_string(expected);
  }
  std::size_t served = 0;
  for (const mw::ChunkLogEntry& chunk : run.chunk_log) served += chunk.size;
  if (served != expected + run.tasks_reclaimed) {
    return "served " + std::to_string(served) + " tasks, expected n * timesteps + reclaimed = " +
           std::to_string(expected + run.tasks_reclaimed);
  }
  if (chunks != run.chunk_count) {
    return "per-worker chunk counts sum to " + std::to_string(chunks) + ", chunk_count is " +
           std::to_string(run.chunk_count);
  }
  return std::nullopt;
}

std::optional<std::string> check_work_seconds(const Scenario& scenario, const BackendRun& run) {
  if (!run.virtual_time || any_failure(run)) return std::nullopt;
  const mw::Config& cfg = scenario.config;
  const auto rng = make_rng(cfg);
  std::vector<double> times;
  std::vector<double> prefix(run.tasks + 1, 0.0);
  std::size_t cursor = 0;
  std::vector<mw::ServedRangeEntry> chunk_ranges;
  std::size_t step_total = run.tasks;  // forces a regeneration at chunk 0
  double nominal_total = 0.0;
  for (std::size_t c = 0; c < run.chunk_log.size(); ++c) {
    if (step_total == run.tasks) {
      cfg.workload->generate_into(times, run.tasks, *rng);
      prefix[0] = 0.0;
      for (std::size_t i = 0; i < times.size(); ++i) {
        nominal_total += times[i];
        prefix[i + 1] = prefix[i] + times[i];
      }
      step_total = 0;
    }
    ranges_of_chunk(run, c, cursor, chunk_ranges);
    double seconds = 0.0;
    for (const mw::ServedRangeEntry& r : chunk_ranges) {
      seconds += prefix[r.first + r.count] - prefix[r.first];
      step_total += r.count;
    }
    if (!close(seconds, run.chunk_log[c].work_seconds)) {
      return "chunk " + std::to_string(c) + " logs " + fmt(run.chunk_log[c].work_seconds) +
             " nominal seconds; the regenerated workload gives " + fmt(seconds);
    }
  }
  if (!close(nominal_total, run.total_nominal_work)) {
    return "total nominal work " + fmt(run.total_nominal_work) +
           " != regenerated workload total " + fmt(nominal_total);
  }
  return std::nullopt;
}

std::optional<std::string> check_makespan_bounds(const Scenario& scenario,
                                                const BackendRun& run) {
  if (!run.virtual_time) return std::nullopt;
  const mw::Config& cfg = scenario.config;
  if (!cfg.worker_speed_profiles.empty()) return std::nullopt;  // time-varying capacity
  double sum_factors = 0.0;
  double max_factor = 0.0;
  for (std::size_t w = 0; w < run.workers; ++w) {
    const double f = cfg.worker_speed_factors.empty() ? 1.0 : cfg.worker_speed_factors[w];
    sum_factors += f;
    max_factor = std::max(max_factor, f);
  }
  // Perfect sharing: completed nominal work >= total_nominal_work and
  // capacity <= sum_factors per simulated second (failures only shrink
  // real capacity, keeping the bound a lower bound).
  const double sharing = run.total_nominal_work / sum_factors;
  if (run.makespan < sharing * (1.0 - kRelTol) - 1e-12) {
    return "makespan " + fmt(run.makespan) + " beats the perfect-sharing bound " + fmt(sharing);
  }
  // Critical path: the largest single task must execute somewhere, at
  // best on the fastest worker.
  const auto rng = make_rng(cfg);
  std::vector<double> times;
  double max_task = 0.0;
  for (std::size_t step = 0; step < run.timesteps; ++step) {
    cfg.workload->generate_into(times, run.tasks, *rng);
    for (double t : times) max_task = std::max(max_task, t);
  }
  const double critical = max_task / max_factor;
  if (run.makespan < critical * (1.0 - kRelTol) - 1e-12) {
    return "makespan " + fmt(run.makespan) + " beats the critical-path bound " + fmt(critical);
  }
  return std::nullopt;
}

std::optional<std::string> check_metrics_identity(const Scenario& scenario,
                                                  const BackendRun& run) {
  if (!run.metrics.has_value()) return std::nullopt;
  const mw::Metrics& m = *run.metrics;
  const mw::Config& cfg = scenario.config;
  const double p = static_cast<double>(run.workers);

  if (m.chunks != run.chunk_count) {
    return "metrics chunks " + std::to_string(m.chunks) + " != chunk_count " +
           std::to_string(run.chunk_count);
  }
  if (run.makespan > 0.0 && !close(m.speedup * run.makespan, run.total_nominal_work)) {
    return "speedup * makespan = " + fmt(m.speedup * run.makespan) + " != total work " +
           fmt(run.total_nominal_work);
  }
  if (run.total_nominal_work > 0.0 && m.speedup > 0.0 && !close(m.slowness, p / m.speedup)) {
    return "slowness " + fmt(m.slowness) + " != p / speedup = " + fmt(p / m.speedup);
  }

  double wasted = 0.0;
  double compute_sum = 0.0;
  for (const mw::WorkerStats& w : run.worker_stats) {
    wasted += run.makespan - w.compute_time;
    compute_sum += w.compute_time;
  }
  if (cfg.overhead_mode == mw::OverheadMode::kAnalytic) {
    wasted += cfg.params.h * static_cast<double>(run.chunk_count);
  }
  if (!close(m.avg_wasted_time, wasted / p)) {
    return "avg wasted time " + fmt(m.avg_wasted_time) + " != recomputed " + fmt(wasted / p);
  }
  if (compute_sum > 0.0) {
    const double mean = compute_sum / p;
    double sq = 0.0;
    for (const mw::WorkerStats& w : run.worker_stats) {
      sq += (w.compute_time - mean) * (w.compute_time - mean);
    }
    const double cov = std::sqrt(sq / p) / mean;
    if (!close(m.cov, cov)) return "cov " + fmt(m.cov) + " != recomputed " + fmt(cov);
  }

  if (!any_failure(run)) {
    // Per-worker served totals re-derive exactly from the chunk log.
    std::vector<std::size_t> tasks_by_pe(run.workers, 0);
    std::vector<std::size_t> chunks_by_pe(run.workers, 0);
    for (const mw::ChunkLogEntry& chunk : run.chunk_log) {
      tasks_by_pe[chunk.pe] += chunk.size;
      chunks_by_pe[chunk.pe] += 1;
    }
    for (std::size_t w = 0; w < run.workers; ++w) {
      if (tasks_by_pe[w] != run.worker_stats[w].tasks) {
        return "worker " + std::to_string(w) + " stats report " +
               std::to_string(run.worker_stats[w].tasks) + " tasks, chunk log has " +
               std::to_string(tasks_by_pe[w]);
      }
      if (chunks_by_pe[w] != run.worker_stats[w].chunks) {
        return "worker " + std::to_string(w) + " stats report " +
               std::to_string(run.worker_stats[w].chunks) + " chunks, chunk log has " +
               std::to_string(chunks_by_pe[w]);
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_cross_backend(const Scenario& scenario,
                                               const BackendRun& mw_run,
                                               const BackendRun& hagerup_run) {
  // Strict agreement is only a theorem for the hagerup_identical class:
  // timing-sensitive techniques (AWF*, AF, BOLD) react to sub-ulp
  // execution-time differences between the two accumulations, and
  // per-PE weights react to request-ordering tie-breaks.  Their
  // statistical agreement is covered by the cross-simulator
  // integration tests instead.
  if (!scenario.hagerup_identical()) return std::nullopt;
  if (mw_run.chunk_count != hagerup_run.chunk_count) {
    return "mw issued " + std::to_string(mw_run.chunk_count) + " chunks, hagerup " +
           std::to_string(hagerup_run.chunk_count);
  }
  if (!close(mw_run.makespan, hagerup_run.makespan, 1e-6)) {
    return "mw makespan " + fmt(mw_run.makespan) + " vs hagerup " + fmt(hagerup_run.makespan);
  }
  for (std::size_t c = 0; c < mw_run.chunk_log.size(); ++c) {
    const mw::ChunkLogEntry& a = mw_run.chunk_log[c];
    const mw::ChunkLogEntry& b = hagerup_run.chunk_log[c];
    if (a.first != b.first || a.size != b.size) {
      return "chunk " + std::to_string(c) + " differs: mw [" + std::to_string(a.first) + " +" +
             std::to_string(a.size) + "), hagerup [" + std::to_string(b.first) + " +" +
             std::to_string(b.size) + ")";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_mw_determinism(const Scenario& scenario,
                                                const BackendRun& mw_run) {
  mw::Config config = scenario.config;
  config.record_chunk_log = true;
  mw::RunContext context;
  // Prime the context with a run, then re-run reusing its cached
  // engine/buffers: both must reproduce `mw_run` bitwise.
  (void)mw::run_simulation(config, context);
  const BackendRun reused = from_mw(config, mw::run_simulation(config, context));
  if (reused.makespan != mw_run.makespan) {
    return "makespan differs across RunContext reuse: " + fmt(mw_run.makespan) + " vs " +
           fmt(reused.makespan);
  }
  if (reused.chunk_log.size() != mw_run.chunk_log.size()) {
    return "chunk log length differs across RunContext reuse: " +
           std::to_string(mw_run.chunk_log.size()) + " vs " +
           std::to_string(reused.chunk_log.size());
  }
  for (std::size_t c = 0; c < mw_run.chunk_log.size(); ++c) {
    const mw::ChunkLogEntry& a = mw_run.chunk_log[c];
    const mw::ChunkLogEntry& b = reused.chunk_log[c];
    if (a.pe != b.pe || a.first != b.first || a.size != b.size || a.issued_at != b.issued_at ||
        a.work_seconds != b.work_seconds) {
      return "chunk " + std::to_string(c) + " differs across RunContext reuse";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_batch_determinism(const Scenario& scenario,
                                                   std::size_t replicas) {
  exec::BatchJob job;
  job.config = scenario.config;
  job.config.record_chunk_log = false;
  job.replicas = replicas;

  // The threaded arm runs on its OWN executor: the fuzzer drives
  // scenarios from inside a shared-pool region, and a nested region on
  // the same pool would collapse to an inline serial loop (the pool's
  // safe re-entry rule) -- silently turning this into serial-vs-serial.
  // A private pool keeps the comparison genuinely scheduling-sensitive
  // (per-slot caches, out-of-order replica completion); static, so the
  // 10k-scenario fuzz suites don't pay a thread spawn/join per call
  // (concurrent fuzzer workers serialize on its region mutex).
  static pool::Executor threaded_pool(3);
  auto run_with = [&](unsigned threads, pool::Executor* executor) {
    exec::BatchRunner::Options options;
    options.threads = threads;
    options.keep_values = true;
    options.executor = executor;
    return exec::BatchRunner(options).run_one(job);
  };
  const exec::BatchResult serial = run_with(1, nullptr);
  const exec::BatchResult threaded = run_with(3, &threaded_pool);

  auto summaries_differ = [](const stats::Summary& a, const stats::Summary& b) {
    return a.count != b.count || a.mean != b.mean || a.stddev != b.stddev || a.min != b.min ||
           a.max != b.max;
  };
  if (summaries_differ(serial.makespan, threaded.makespan)) return std::string("makespan summary differs between 1 and 3 batch threads");
  if (summaries_differ(serial.avg_wasted_time, threaded.avg_wasted_time)) {
    return std::string("avg wasted time summary differs between 1 and 3 batch threads");
  }
  if (summaries_differ(serial.speedup, threaded.speedup)) {
    return std::string("speedup summary differs between 1 and 3 batch threads");
  }
  if (summaries_differ(serial.chunks, threaded.chunks)) {
    return std::string("chunks summary differs between 1 and 3 batch threads");
  }
  if (serial.makespan_values != threaded.makespan_values) {
    return std::string("per-replica makespans differ between 1 and 3 batch threads");
  }
  return std::nullopt;
}

std::optional<std::string> check_worker_monotonicity(const Scenario& scenario) {
  const mw::Config& cfg = scenario.config;
  if (scenario.timing_sensitive || scenario.heterogeneous || scenario.has_failures ||
      !scenario.null_network) {
    return std::nullopt;
  }
  if (cfg.overhead_mode != mw::OverheadMode::kAnalytic) return std::nullopt;
  if (cfg.technique == dls::Kind::kRND) return std::nullopt;  // chunk sizes re-randomize with p
  if (!cfg.params.weights.empty()) return std::nullopt;
  if (cfg.workload->stddev() != 0.0) return std::nullopt;  // constant workloads only

  mw::Config doubled = cfg;
  doubled.workers = cfg.workers * 2;
  doubled.record_chunk_log = false;
  // has_failures is false here, so any failure list is all-infinity;
  // drop it rather than resizing for the doubled worker count.
  doubled.worker_failure_times.clear();
  mw::Config base = cfg;
  base.record_chunk_log = false;
  base.worker_failure_times.clear();
  const double makespan_p = mw::run_simulation(base).makespan;
  const double makespan_2p = mw::run_simulation(doubled).makespan;
  if (makespan_2p > makespan_p * (1.0 + kRelTol) + 1e-12) {
    return "makespan worsened with more workers: " + fmt(makespan_p) + " at p = " +
           std::to_string(cfg.workers) + " vs " + fmt(makespan_2p) + " at p = " +
           std::to_string(doubled.workers);
  }
  return std::nullopt;
}

std::vector<Failure> check_run(const Scenario& scenario, const BackendRun& run) {
  std::vector<Failure> failures;
  auto apply = [&](const char* name, std::optional<std::string> result) {
    if (result.has_value()) {
      failures.push_back(Failure{name, "[" + run.backend + "] " + *result});
    }
  };
  apply("chunk_bounds", check_chunk_bounds(run));
  apply("coverage", check_coverage(run));
  apply("conservation", check_conservation(run));
  apply("work_seconds", check_work_seconds(scenario, run));
  apply("makespan_bounds", check_makespan_bounds(scenario, run));
  apply("metrics_identity", check_metrics_identity(scenario, run));
  return failures;
}

}  // namespace check
