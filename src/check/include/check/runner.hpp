#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/scenario.hpp"

namespace check {

/// Knobs of one conformance run (the dls_check CLI mirrors these).
struct CheckOptions {
  std::size_t runs = 100;       ///< scenarios to generate and check
  std::uint64_t seed = 1;       ///< scenario stream seed
  ScenarioOptions scenario;     ///< bounds of the generated space
  bool minimize = true;         ///< shrink violating scenarios before reporting
  std::size_t shrink_budget = 64;  ///< max scenario re-checks while shrinking
  /// Every `expensive_stride`-th scenario additionally runs the
  /// cross-execution checks (mw determinism, batch determinism,
  /// worker monotonicity), which re-run the simulation several times.
  std::size_t expensive_stride = 8;
  /// Run the native runtime::DlsLoopExecutor backend (real threads;
  /// disable where spawning threads is unwanted).
  bool check_runtime = true;
  unsigned threads = 0;  ///< scenario-level parallelism (0 = default)
};

/// One reported violation: which scenario, which invariant, and the
/// minimized replayable experiment file that reproduces it.
struct Violation {
  std::size_t scenario_index = 0;
  std::string invariant;
  std::string message;
  std::string experiment_text;
};

struct CheckReport {
  std::size_t scenarios = 0;
  std::vector<Violation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// All invariants applicable to `scenario`, including the cross-backend
/// comparison; `expensive` additionally enables the multi-run checks.
[[nodiscard]] std::vector<Failure> check_scenario(const Scenario& scenario, bool expensive,
                                                  bool check_runtime = true);

/// Greedily shrink `scenario` (fewer tasks/workers/timesteps, dropped
/// heterogeneity/failures/overhead, simpler workload) while
/// `still_fails` keeps returning true, re-checking at most `budget`
/// candidates.  Returns the smallest still-failing scenario.
[[nodiscard]] Scenario minimize_scenario(
    const Scenario& scenario, const std::function<bool(const Scenario&)>& still_fails,
    std::size_t budget = 64);

/// Generate `options.runs` scenarios and check them all.  Violations
/// come back minimized (when options.minimize) and replayable, ordered
/// by scenario index.
[[nodiscard]] CheckReport run_checks(const CheckOptions& options);

/// Human-readable report; returns report.ok().
bool print_report(const CheckReport& report, std::ostream& out);

}  // namespace check
