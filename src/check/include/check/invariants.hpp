#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/backend.hpp"
#include "check/scenario.hpp"

namespace check {

/// One violated invariant.  `invariant` is the catalog name (stable:
/// tests and reports key off it), `message` the human-readable account.
struct Failure {
  std::string invariant;
  std::string message;
};

/// The machine-checkable invariant catalog.  Each function returns
/// std::nullopt when the invariant holds -- including vacuously, when
/// the scenario/run does not meet the invariant's preconditions (each
/// documents its own).
///
/// Structural invariants on a single backend run:

/// "chunk_bounds": every chunk has size >= 1 and lies inside [0, n);
/// its ranges are in-bounds, non-empty, and sum to the chunk size;
/// chunk_count equals the log length.
[[nodiscard]] std::optional<std::string> check_chunk_bounds(const BackendRun& run);

/// "coverage": failure-free runs only -- walking the chunk log in
/// issue order, each timestep's served ranges exactly partition [0, n):
/// no overlap, no gap, no spill into the next step.
[[nodiscard]] std::optional<std::string> check_coverage(const BackendRun& run);

/// "conservation": tasks are conserved under failures -- completed
/// tasks sum to n * timesteps, served tasks sum to n * timesteps +
/// reclaimed, and per-worker chunk counts sum to chunk_count.
[[nodiscard]] std::optional<std::string> check_conservation(const BackendRun& run);

/// "work_seconds": failure-free virtual-time runs -- every chunk's
/// logged aggregate nominal time matches the value recomputed from the
/// regenerated workload (same seed, same generator chain).
[[nodiscard]] std::optional<std::string> check_work_seconds(const Scenario& scenario,
                                                            const BackendRun& run);

/// "makespan_bounds": profile-free virtual-time runs -- the makespan
/// respects the perfect-sharing bound (total nominal work over total
/// speed capacity) and the critical-path bound (the largest single task
/// on the fastest worker).
[[nodiscard]] std::optional<std::string> check_makespan_bounds(const Scenario& scenario,
                                                               const BackendRun& run);

/// "metrics_identity": mw runs -- the derived Metrics are recomputable:
/// speedup * makespan = total work, slowness = p / speedup, avg wasted
/// time and cov re-derive from the per-worker stats, and (failure-free)
/// per-worker served tasks re-derive from the chunk log.
[[nodiscard]] std::optional<std::string> check_metrics_identity(const Scenario& scenario,
                                                                const BackendRun& run);

/// Cross-backend and cross-execution invariants:

/// "cross_backend": hagerup-comparable scenarios -- mw and hagerup
/// issue the same number of chunks and agree on the makespan; for
/// hagerup_identical() scenarios the (first, size) chunk sequences are
/// bitwise identical.
[[nodiscard]] std::optional<std::string> check_cross_backend(const Scenario& scenario,
                                                             const BackendRun& mw_run,
                                                             const BackendRun& hagerup_run);

/// "mw_determinism": the same scenario re-run through a fresh context
/// and through a reused RunContext produces a bitwise-identical
/// makespan and chunk log.  Runs the simulation twice.
[[nodiscard]] std::optional<std::string> check_mw_determinism(const Scenario& scenario,
                                                              const BackendRun& mw_run);

/// "batch_determinism": exec::BatchRunner mw summaries over `replicas` are
/// bitwise identical with 1 and with several worker threads.  Runs
/// 2 * replicas simulations.
[[nodiscard]] std::optional<std::string> check_batch_determinism(const Scenario& scenario,
                                                                 std::size_t replicas = 4);

/// "worker_monotonicity": constant-workload, null-network, analytic,
/// homogeneous, failure-free scenarios with a non-timing-sensitive,
/// non-randomized technique -- doubling the worker count never worsens
/// the makespan.  Runs two simulations.
[[nodiscard]] std::optional<std::string> check_worker_monotonicity(const Scenario& scenario);

/// All invariants applicable to one already-executed backend run (the
/// structural block above).  Tests inject violations by mutating `run`
/// and asserting the catalog catches them.
[[nodiscard]] std::vector<Failure> check_run(const Scenario& scenario, const BackendRun& run);

}  // namespace check
