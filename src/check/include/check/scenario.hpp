#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "mw/config.hpp"

namespace check {

/// One randomized-but-seeded point of the full mw::Config space
/// (technique x workload x workers x heterogeneous speeds x piecewise
/// perturbation profiles x fail-stop times x overhead mode x network x
/// timesteps), plus the structural facts the invariant catalog keys
/// off.  Scenarios always record the chunk log.
struct Scenario {
  mw::Config config;

  // Derived structural facts; recomputed by classify().
  bool null_network = false;   ///< message delays are exactly zero
  bool heterogeneous = false;  ///< speed factors or profiles present
  bool has_failures = false;   ///< some worker has a finite fail-stop time
  /// Technique consumes timing feedback (AWF*, AF) or wall-clock state
  /// (BOLD), so scheduling decisions are sensitive to sub-ulp timing
  /// differences between backends.
  bool timing_sensitive = false;

  /// Replayable through hagerup::run with comparable decisions: single
  /// timestep, null network, analytic overhead, homogeneous,
  /// failure-free (the BOLD study's regime).
  [[nodiscard]] bool hagerup_comparable() const;
  /// Stricter: additionally not timing-sensitive and without per-PE
  /// weights, so the mw and hagerup chunk-size sequences must be
  /// BITWISE identical.
  [[nodiscard]] bool hagerup_identical() const;
};

/// Bounds of the generated space (keeps fuzz runs to seconds).
struct ScenarioOptions {
  std::size_t max_tasks = 4096;
  std::size_t min_tasks = 8;
  std::size_t max_workers = 16;
  std::size_t max_timesteps = 3;
};

/// Deterministic scenario `index` of stream `seed`: the same (seed,
/// index, options) always yields the same scenario, independent of
/// platform and of any other scenario.
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed, std::size_t index,
                                         const ScenarioOptions& options = {});

/// Recompute the derived structural facts from scenario.config (call
/// after mutating the config, e.g. while minimizing).
void classify(Scenario& scenario);

/// The scenario as a replayable experiment file (repro format): feed it
/// to `dls_sim` or repro::parse_experiment_spec to reproduce the run.
[[nodiscard]] std::string to_experiment_text(const Scenario& scenario);

}  // namespace check
