#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dist/protocol.hpp"
#include "sweep/grid.hpp"

namespace check {

/// Invariants of the fault-tolerant distributed sweep (dls::dist),
/// following the catalog convention of check/invariants.hpp: each
/// returns std::nullopt when the invariant holds and a human-readable
/// account of the first violation otherwise.  `dls_check records` /
/// `dls_check leases` expose them to CI.

/// "merged_unique": no (cell, backend) appears twice in a merged sweep
/// output -- a sweep that lost and retried workers must not compute a
/// cell into the record stream twice.  Also rejects lines that are not
/// complete records (a merged output has no excuse for a torn tail).
[[nodiscard]] std::optional<std::string> check_merged_unique_cells(
    const std::vector<std::string>& lines);

/// "merged_complete": the merged output covers every (cell, backend)
/// of `grid` exactly once -- nothing lost to a reclaimed lease,
/// nothing duplicated by a retry.
[[nodiscard]] std::optional<std::string> check_merged_complete(
    const sweep::Grid& grid, const std::vector<std::string>& lines);

/// "lease_exclusivity": replaying a coordinator lease-event log, no
/// stripe is ever leased while a live worker still holds it, no worker
/// holds two leases at once, and terminal events (done/adopt/reclaim)
/// come from the stripe's current holder.  A seq that moves backward
/// marks a coordinator restart and resets the replay (the log file is
/// append-mode across runs).
[[nodiscard]] std::optional<std::string> check_lease_exclusivity(
    const std::vector<dist::LeaseEvent>& events);

/// "attempt_consistency": across the attempt files of one stripe (the
/// first attempt's partial records and every retry's), records of the
/// same (cell, backend) are byte-identical -- a reclaimed stripe's
/// rerun must reproduce the dead worker's bytes exactly, or the
/// determinism the resume/merge machinery rests on is broken.
[[nodiscard]] std::optional<std::string> check_attempt_consistency(
    const std::vector<std::vector<std::string>>& attempts);

}  // namespace check
