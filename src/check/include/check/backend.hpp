#pragma once

#include <optional>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "hagerup/simulator.hpp"
#include "mw/metrics.hpp"
#include "mw/result.hpp"
#include "runtime/dls_loop.hpp"

namespace check {

/// Uniform view of one run of any execution vehicle -- the shared
/// currency of the invariant catalog.  Chunk/range logs reuse the mw
/// log types; backends without fragmentation (hagerup, runtime) emit
/// one range per chunk.
struct BackendRun {
  std::string backend;  ///< "mw" | "hagerup" | "runtime"
  std::size_t tasks = 0;
  std::size_t timesteps = 1;
  std::size_t workers = 0;
  double makespan = 0.0;
  double total_nominal_work = 0.0;
  std::size_t chunk_count = 0;
  std::size_t tasks_reclaimed = 0;
  std::vector<mw::WorkerStats> worker_stats;
  std::vector<mw::ChunkLogEntry> chunk_log;
  std::vector<mw::ServedRangeEntry> range_log;
  /// Paper metrics, for backends that define them (mw only).
  std::optional<mw::Metrics> metrics;
  /// Virtual-time semantics: chunk issue times and compute times are
  /// exact simulated values (false for the native runtime, whose
  /// wall-clock numbers only support structural invariants).
  bool virtual_time = true;
};

/// Adapters from the native result types.
[[nodiscard]] BackendRun from_mw(const mw::Config& config, mw::RunResult result);
[[nodiscard]] BackendRun from_hagerup(const hagerup::Config& config,
                                      const hagerup::RunResult& result);
[[nodiscard]] BackendRun from_runtime(std::size_t n, unsigned threads,
                                      const runtime::LoopStats& stats);

/// Run the scenario through the mw message-passing simulator.
[[nodiscard]] BackendRun run_mw(const Scenario& scenario);

/// Run the scenario through the hagerup direct simulator (the caller
/// checks Scenario::hagerup_comparable()).  Overhead is accounted
/// analytically (charge_overhead_inline = false) to match mw's
/// OverheadMode::kAnalytic.
[[nodiscard]] BackendRun run_hagerup(const Scenario& scenario);

/// Execute the scenario's technique natively through
/// runtime::DlsLoopExecutor with a trivial body: real threads, so only
/// structural invariants (coverage, conservation) apply.  `n_cap`
/// bounds the iteration count to keep fuzz runs fast.
[[nodiscard]] BackendRun run_runtime(const Scenario& scenario, std::size_t n_cap = 2048);

}  // namespace check
