#pragma once

#include <cstddef>

#include "check/scenario.hpp"
#include "exec/backend.hpp"

namespace check {

/// The uniform run record and the per-backend adapters live in the
/// execution layer (exec/backend.hpp) since they became first-class
/// citizens of the experiment grids; check consumes them as the
/// currency of its invariant catalog.
using BackendRun = exec::BackendRun;
using exec::from_hagerup;
using exec::from_mw;
using exec::from_runtime;

/// Scenario-level conveniences over exec::make_backend():

/// Run the scenario through the mw message-passing simulator.
[[nodiscard]] BackendRun run_mw(const Scenario& scenario);

/// Run the scenario through the hagerup direct simulator (the caller
/// checks Scenario::hagerup_comparable(); the backend itself rejects
/// configs it cannot express).  Overhead is accounted analytically to
/// match mw's OverheadMode::kAnalytic.
[[nodiscard]] BackendRun run_hagerup(const Scenario& scenario);

/// Execute the scenario's technique natively through the runtime
/// backend: real threads (capped at 8 for fuzz runs), so only
/// structural invariants (coverage, conservation) apply.  `n_cap`
/// bounds the iteration count to keep fuzz runs fast.
[[nodiscard]] BackendRun run_runtime(const Scenario& scenario, std::size_t n_cap = 2048);

}  // namespace check
