#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dist/protocol.hpp"

namespace check {

/// Transport invariants of the socket sweep (dls::net), replayed from
/// the coordinator's lease-event log like check/dist.hpp's.  Each
/// returns std::nullopt when the invariant holds and a human-readable
/// account of the first violation otherwise; `dls_check leases` runs
/// them alongside lease exclusivity.  Both tolerate pipe-mode logs
/// (which contain no hello/fetch events) and coordinator restarts
/// (seq moving backward resets the replay).

/// "hello_before_lease": on a serving coordinator, no lease is ever
/// granted to a worker that has not completed the HELLO handshake --
/// an unauthenticated link must never touch the lease table.  Applies
/// per accepted link: a `spawn` with detail "accept" resets that
/// worker's handshake state, so a reconnecting client must HELLO
/// again.
[[nodiscard]] std::optional<std::string> check_hello_before_lease(
    const std::vector<dist::LeaseEvent>& events);

/// "fetch_before_done": every `done` with detail "fetched" (a remote
/// stripe committed from a DATA stream) is preceded by a matching
/// `fetch` event for the same (worker, stripe, attempt) -- the
/// coordinator never commits remote bytes it did not ask for.
[[nodiscard]] std::optional<std::string> check_fetch_before_done(
    const std::vector<dist::LeaseEvent>& events);

}  // namespace check
