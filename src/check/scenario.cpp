#include "check/scenario.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "repro/experiment_file.hpp"
#include "workload/task_times.hpp"

namespace check {
namespace {

/// splitmix64: small, fast, and platform-independent -- scenario
/// generation must not depend on std::<distribution> implementation
/// details, or the same seed would mean different scenarios per
/// standard library.
class Rng {
 public:
  Rng(std::uint64_t seed, std::uint64_t index)
      : state_(seed ^ (0x9e3779b97f4a7c15ull * (index + 1))) {
    next();
    next();
  }

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); modulo bias is irrelevant for space coverage.
  std::size_t below(std::size_t n) { return static_cast<std::size_t>(next() % n); }
  std::size_t in(std::size_t lo, std::size_t hi) { return lo + below(hi - lo + 1); }
  double unit() { return static_cast<double>(next() >> 11) * 0x1p-53; }
  bool chance(double p) { return unit() < p; }

  template <typename T>
  const T& pick(const std::vector<T>& options) {
    return options[below(options.size())];
  }

 private:
  std::uint64_t state_;
};

constexpr double kInf = std::numeric_limits<double>::infinity();

bool is_timing_sensitive(dls::Kind kind) {
  switch (kind) {
    case dls::Kind::kBOLD:
    case dls::Kind::kAWF:
    case dls::Kind::kAWFB:
    case dls::Kind::kAWFC:
    case dls::Kind::kAWFD:
    case dls::Kind::kAWFE:
    case dls::Kind::kAF:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool Scenario::hagerup_comparable() const {
  return config.timesteps == 1 && null_network && !heterogeneous && !has_failures &&
         config.overhead_mode == mw::OverheadMode::kAnalytic;
}

bool Scenario::hagerup_identical() const {
  return hagerup_comparable() && !timing_sensitive && config.params.weights.empty();
}

void classify(Scenario& scenario) {
  const mw::Config& cfg = scenario.config;
  // Delays are sum(latency) + bytes/bandwidth per message; they are
  // exactly zero only for zero latency and infinite bandwidth.
  scenario.null_network =
      cfg.latency == 0.0 && std::isinf(cfg.bandwidth) && cfg.bandwidth > 0.0;
  scenario.heterogeneous =
      !cfg.worker_speed_factors.empty() || !cfg.worker_speed_profiles.empty();
  scenario.has_failures = false;
  for (double t : cfg.worker_failure_times) {
    if (t < kInf) scenario.has_failures = true;
  }
  scenario.timing_sensitive = is_timing_sensitive(cfg.technique);
}

Scenario generate_scenario(std::uint64_t seed, std::size_t index,
                           const ScenarioOptions& options) {
  Rng rng(seed, index);
  Scenario scenario;
  mw::Config& cfg = scenario.config;

  cfg.technique = rng.pick(dls::all_kinds());
  cfg.workers = rng.in(1, options.max_workers);
  // Log-uniform task counts: small-n edge cases are as likely as big runs.
  {
    const double lo = std::log2(static_cast<double>(options.min_tasks));
    const double hi = std::log2(static_cast<double>(options.max_tasks));
    cfg.tasks = static_cast<std::size_t>(std::llround(std::exp2(lo + (hi - lo) * rng.unit())));
    if (cfg.tasks < 1) cfg.tasks = 1;
  }
  cfg.timesteps = rng.chance(0.25) && options.max_timesteps >= 2
                      ? rng.in(2, options.max_timesteps)
                      : 1;

  static const std::vector<std::string> kWorkloads = {
      "constant:1",       "constant:0.002",    "uniform:0.5,1.5", "exponential:1",
      "normal:1,0.25",    "gamma:2,0.5",       "ramp:2,0.1",      "ramp:0.1,2",
      "bimodal:0.1,1,0.25", "lognormal:1,0.5", "weibull:1.5,1",
  };
  cfg.workload = workload::from_spec(rng.pick(kWorkloads));
  cfg.params.mu = cfg.workload->mean();
  cfg.params.sigma = cfg.workload->stddev();

  static const std::vector<double> kOverheads = {0.0, 0.01, 0.5};
  cfg.params.h = rng.pick(kOverheads);
  cfg.overhead_mode =
      rng.chance(0.25) ? mw::OverheadMode::kSimulated : mw::OverheadMode::kAnalytic;

  if (cfg.technique == dls::Kind::kCSS && rng.chance(0.5)) {
    cfg.params.css_chunk = rng.in(1, std::max<std::size_t>(1, cfg.tasks / 2));
  }
  if (cfg.technique == dls::Kind::kGSS && rng.chance(0.5)) {
    cfg.params.gss_min_chunk = rng.in(1, 8);
  }
  if (cfg.technique == dls::Kind::kRND) {
    cfg.params.rnd_seed = rng.next() % 100000;
  }
  if (cfg.technique == dls::Kind::kWF && rng.chance(0.5)) {
    cfg.params.weights.resize(cfg.workers);
    for (double& w : cfg.params.weights) w = 0.25 + 1.75 * rng.unit();
  }

  // Network: exactly-null half the time (the hagerup-comparable regime),
  // otherwise the BOLD near-null defaults or a real star network.
  if (rng.chance(0.5)) {
    cfg.latency = 0.0;
    cfg.bandwidth = kInf;
  } else if (rng.chance(0.5)) {
    cfg.latency = 1e-12;
    cfg.bandwidth = 1e21;
  } else {
    static const std::vector<double> kLatencies = {1e-6, 1e-4};
    static const std::vector<double> kBandwidths = {1e8, 1e9};
    cfg.latency = rng.pick(kLatencies);
    cfg.bandwidth = rng.pick(kBandwidths);
  }

  // Heterogeneity: per-worker speed factors, sometimes piecewise
  // perturbation profiles (with zero-speed windows) on top.
  const double share_seconds =
      cfg.params.mu * static_cast<double>(cfg.tasks) / static_cast<double>(cfg.workers);
  if (rng.chance(0.25)) {
    cfg.worker_speed_factors.resize(cfg.workers);
    for (double& f : cfg.worker_speed_factors) f = 0.25 + 1.75 * rng.unit();
  }
  if (rng.chance(0.2)) {
    cfg.worker_speed_profiles.resize(cfg.workers);
    for (std::size_t w = 0; w < cfg.workers; ++w) {
      const double base =
          cfg.host_speed * (cfg.worker_speed_factors.empty() ? 1.0
                                                             : cfg.worker_speed_factors[w]);
      simx::SpeedProfile& profile = cfg.worker_speed_profiles[w];
      profile.time_points = {0.0};
      profile.speeds = {base};
      const std::size_t segments = rng.in(0, 3);
      double t = 0.0;
      for (std::size_t s = 0; s < segments; ++s) {
        t += (0.05 + 0.45 * rng.unit()) * share_seconds;
        profile.time_points.push_back(t);
        // Zero-speed windows model the perturbation studies; the final
        // segment must run, or stranded work could never finish.
        const bool stopped = s + 1 < segments && rng.chance(0.3);
        profile.speeds.push_back(stopped ? 0.0 : cfg.host_speed * (0.25 + 1.75 * rng.unit()));
      }
    }
  }

  // Fail-stop times: a strict minority of workers dies mid-run; at
  // least one survivor is guaranteed (all workers failing is an error
  // by contract).
  if (cfg.workers > 1 && rng.chance(0.2)) {
    cfg.worker_failure_times.assign(cfg.workers, kInf);
    const std::size_t failures = rng.in(1, std::max<std::size_t>(1, (cfg.workers - 1) / 2));
    for (std::size_t k = 0; k < failures; ++k) {
      // Worker 0 always survives; duplicates just re-kill the same worker.
      const std::size_t victim = rng.in(1, cfg.workers - 1);
      cfg.worker_failure_times[victim] = (0.05 + 0.9 * rng.unit()) * share_seconds;
    }
  }

  cfg.seed = rng.next() & 0xffffffffull;  // 32-bit: round-trips the file format exactly
  cfg.use_rand48 = rng.chance(0.5);
  cfg.record_chunk_log = true;

  classify(scenario);
  return scenario;
}

std::string to_experiment_text(const Scenario& scenario) {
  repro::ExperimentSpec spec;
  spec.config = scenario.config;
  return repro::serialize_experiment_spec(spec);
}

}  // namespace check
