#include "check/net.hpp"

#include <set>
#include <tuple>

namespace check {
namespace {

using dist::LeaseEvent;

[[nodiscard]] std::string describe(const LeaseEvent& event) {
  std::string out = "seq " + std::to_string(event.seq) + " " + event.kind;
  if (event.worker != LeaseEvent::npos) out += " worker=" + std::to_string(event.worker);
  if (event.stripe != LeaseEvent::npos) out += " stripe=" + std::to_string(event.stripe);
  if (event.attempt != LeaseEvent::npos) out += " attempt=" + std::to_string(event.attempt);
  if (!event.detail.empty()) out += " detail=" + event.detail;
  return out;
}

}  // namespace

std::optional<std::string> check_hello_before_lease(const std::vector<LeaseEvent>& events) {
  // Per-worker handshake state.  Only workers spawned with detail
  // "accept" (socket links) owe a HELLO; pipe workers never emit one
  // and never need one.
  std::set<std::size_t> accepted;  // socket links awaiting HELLO
  std::set<std::size_t> helloed;
  std::size_t last_seq = 0;
  bool first = true;
  for (const LeaseEvent& event : events) {
    if (!first && event.seq <= last_seq) {
      // Coordinator restart: the log is append-mode across runs.
      accepted.clear();
      helloed.clear();
    }
    first = false;
    last_seq = event.seq;

    if (event.kind == "spawn") {
      if (event.detail == "accept") {
        // A reconnecting client reuses no credentials: HELLO again.
        accepted.insert(event.worker);
        helloed.erase(event.worker);
      }
      continue;
    }
    if (event.kind == "hello") {
      if (!accepted.contains(event.worker)) {
        return "hello_before_lease: " + describe(event) +
               " -- hello from a worker never accepted on a socket";
      }
      helloed.insert(event.worker);
      continue;
    }
    if (event.kind == "dead") {
      accepted.erase(event.worker);
      helloed.erase(event.worker);
      continue;
    }
    if (event.kind == "lease") {
      if (accepted.contains(event.worker) && !helloed.contains(event.worker)) {
        return "hello_before_lease: " + describe(event) +
               " -- lease granted to a socket worker before its HELLO";
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_fetch_before_done(const std::vector<LeaseEvent>& events) {
  std::set<std::tuple<std::size_t, std::size_t, std::size_t>> fetches;
  std::size_t last_seq = 0;
  bool first = true;
  for (const LeaseEvent& event : events) {
    if (!first && event.seq <= last_seq) fetches.clear();
    first = false;
    last_seq = event.seq;

    if (event.kind == "fetch") {
      fetches.insert({event.worker, event.stripe, event.attempt});
      continue;
    }
    if (event.kind == "done" && event.detail == "fetched") {
      if (!fetches.contains({event.worker, event.stripe, event.attempt})) {
        return "fetch_before_done: " + describe(event) +
               " -- remote stripe committed without a preceding fetch";
      }
    }
  }
  return std::nullopt;
}

}  // namespace check
