#include "check/backend.hpp"

#include <algorithm>

#include "mw/simulation.hpp"

namespace check {

BackendRun from_mw(const mw::Config& config, mw::RunResult result) {
  BackendRun run;
  run.backend = "mw";
  run.tasks = config.tasks;
  run.timesteps = config.timesteps;
  run.workers = config.workers;
  run.makespan = result.makespan;
  run.total_nominal_work = result.total_nominal_work;
  run.chunk_count = result.chunk_count;
  run.tasks_reclaimed = result.tasks_reclaimed;
  run.metrics = mw::compute_metrics(result, config);
  run.worker_stats = std::move(result.workers);
  run.chunk_log = std::move(result.chunk_log);
  run.range_log = std::move(result.range_log);
  return run;
}

BackendRun from_hagerup(const hagerup::Config& config, const hagerup::RunResult& result) {
  BackendRun run;
  run.backend = "hagerup";
  run.tasks = config.tasks;
  run.timesteps = 1;
  run.workers = config.pes;
  run.makespan = result.makespan;
  run.total_nominal_work = result.total_work;
  run.chunk_count = result.chunk_count;
  run.worker_stats.resize(config.pes);
  for (std::size_t w = 0; w < config.pes; ++w) {
    run.worker_stats[w].compute_time = result.compute_time[w];
    run.worker_stats[w].chunks = result.chunks[w];
  }
  run.chunk_log.reserve(result.chunk_log.size());
  run.range_log.reserve(result.chunk_log.size());
  for (const hagerup::ChunkLogEntry& entry : result.chunk_log) {
    run.range_log.push_back(
        mw::ServedRangeEntry{run.chunk_log.size(), entry.first, entry.size});
    run.chunk_log.push_back(mw::ChunkLogEntry{entry.pe, entry.first, entry.size,
                                              entry.issued_at, entry.work_seconds});
    run.worker_stats[entry.pe].tasks += entry.size;
  }
  return run;
}

BackendRun from_runtime(std::size_t n, unsigned threads, const runtime::LoopStats& stats) {
  BackendRun run;
  run.backend = "runtime";
  run.tasks = n;
  run.timesteps = 1;
  run.workers = threads;
  run.makespan = stats.wall_seconds;
  run.chunk_count = stats.chunks;
  run.virtual_time = false;
  run.worker_stats.resize(threads);
  for (unsigned t = 0; t < threads; ++t) {
    run.worker_stats[t].compute_time = stats.busy_seconds_per_thread[t];
    run.worker_stats[t].tasks = stats.tasks_per_thread[t];
    run.worker_stats[t].chunks = stats.chunks_per_thread[t];
  }
  run.chunk_log.reserve(stats.chunk_log.size());
  run.range_log.reserve(stats.chunk_log.size());
  for (const runtime::LoopChunk& chunk : stats.chunk_log) {
    run.range_log.push_back(mw::ServedRangeEntry{run.chunk_log.size(), chunk.first, chunk.size});
    run.chunk_log.push_back(mw::ChunkLogEntry{chunk.thread, chunk.first, chunk.size, 0.0, 0.0});
  }
  return run;
}

BackendRun run_mw(const Scenario& scenario) {
  mw::Config config = scenario.config;
  config.record_chunk_log = true;
  return from_mw(config, mw::run_simulation(config));
}

BackendRun run_hagerup(const Scenario& scenario) {
  const mw::Config& mc = scenario.config;
  hagerup::Config config;
  config.technique = mc.technique;
  config.params = mc.params;
  config.pes = mc.workers;
  config.tasks = mc.tasks;
  config.workload = mc.workload;
  config.seed = mc.seed;
  config.use_rand48 = mc.use_rand48;
  config.charge_overhead_inline = false;  // match mw's analytic accounting
  config.record_chunk_log = true;
  return from_hagerup(config, hagerup::run(config));
}

BackendRun run_runtime(const Scenario& scenario, std::size_t n_cap) {
  const std::size_t n = std::min(scenario.config.tasks, std::max<std::size_t>(n_cap, 1));
  runtime::DlsLoopExecutor::Options options;
  options.technique = scenario.config.technique;
  options.params = scenario.config.params;
  options.threads =
      static_cast<unsigned>(std::min<std::size_t>(scenario.config.workers, 8));
  // Per-PE weights are sized for the scenario's workers; the native
  // executor runs with its own thread count.
  if (!options.params.weights.empty()) {
    options.params.weights.resize(options.threads, 1.0);
  }
  options.record_chunk_log = true;
  runtime::DlsLoopExecutor executor(options);
  const runtime::LoopStats stats = executor.run(n, [](std::size_t, std::size_t) {});
  return from_runtime(n, executor.threads(), stats);
}

}  // namespace check
