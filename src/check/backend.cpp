#include "check/backend.hpp"

namespace check {

BackendRun run_mw(const Scenario& scenario) {
  return exec::make_backend("mw")->run(scenario.config);
}

BackendRun run_hagerup(const Scenario& scenario) {
  return exec::make_backend("hagerup")->run(scenario.config);
}

BackendRun run_runtime(const Scenario& scenario, std::size_t n_cap) {
  exec::BackendOptions options;
  options.runtime_task_cap = n_cap;
  options.runtime_max_threads = 8;
  return exec::make_backend("runtime", options)->run(scenario.config);
}

}  // namespace check
