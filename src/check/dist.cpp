#include "check/dist.hpp"

#include <map>
#include <set>
#include <string>

#include "sweep/record.hpp"

namespace check {
namespace {

std::string key_name(const sweep::RecordKey& key) {
  return "cell " + std::to_string(key.cell) + " backend " + key.backend;
}

std::string event_name(const dist::LeaseEvent& event) {
  std::string name = "event seq " + std::to_string(event.seq) + " (" + event.kind;
  if (event.worker != dist::LeaseEvent::npos) {
    name += " worker " + std::to_string(event.worker);
  }
  if (event.stripe != dist::LeaseEvent::npos) {
    name += " stripe " + std::to_string(event.stripe);
  }
  name += ")";
  return name;
}

}  // namespace

std::optional<std::string> check_merged_unique_cells(const std::vector<std::string>& lines) {
  std::map<sweep::RecordKey, std::size_t> first_seen;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto key = sweep::record_key(lines[i]);
    if (!key) {
      return "merged line " + std::to_string(i + 1) +
             " is not a complete record (torn tail in a MERGED output?)";
    }
    const auto [it, inserted] = first_seen.emplace(*key, i + 1);
    if (!inserted) {
      return key_name(*key) + " appears twice in the merged output (lines " +
             std::to_string(it->second) + " and " + std::to_string(i + 1) +
             ") -- a retried stripe was double-counted";
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_merged_complete(const sweep::Grid& grid,
                                                 const std::vector<std::string>& lines) {
  if (const auto duplicate = check_merged_unique_cells(lines)) return duplicate;
  std::set<sweep::RecordKey> present;
  for (const std::string& line : lines) present.insert(*sweep::record_key(line));
  for (std::size_t index = 0; index < grid.cells(); ++index) {
    const sweep::RecordKey key{index / grid.backend_count(),
                               std::string(sweep::cell_backend(grid, index))};
    if (!present.erase(key)) {
      return key_name(key) + " is missing from the merged output (" +
             std::to_string(lines.size()) + " records for a " +
             std::to_string(grid.cells()) + "-cell grid) -- a reclaimed lease lost work";
    }
  }
  if (!present.empty()) {
    return key_name(*present.begin()) +
           " does not belong to the grid -- merged output from a different spec?";
  }
  return std::nullopt;
}

std::optional<std::string> check_lease_exclusivity(const std::vector<dist::LeaseEvent>& events) {
  // Replay state: which worker holds each stripe, which stripe each
  // live worker holds, which workers are live.  A seq that moves
  // backward marks the start of an appended coordinator-restart run
  // (the events file is opened in append mode), so the replay resets.
  std::map<std::size_t, std::size_t> stripe_holder;  // stripe -> worker
  std::map<std::size_t, std::size_t> worker_lease;   // worker -> stripe
  std::set<std::size_t> live;
  std::size_t last_seq = 0;
  bool first = true;

  for (const dist::LeaseEvent& event : events) {
    if (!first && event.seq <= last_seq) {
      stripe_holder.clear();
      worker_lease.clear();
      live.clear();
    }
    first = false;
    last_seq = event.seq;

    if (event.kind == "spawn") {
      live.insert(event.worker);
    } else if (event.kind == "lease") {
      if (!live.count(event.worker)) {
        return event_name(event) + ": lease granted to a worker never spawned or already dead";
      }
      if (const auto held = stripe_holder.find(event.stripe); held != stripe_holder.end()) {
        return event_name(event) + ": stripe already leased to live worker " +
               std::to_string(held->second) + " -- two live workers hold one lease";
      }
      if (const auto busy = worker_lease.find(event.worker); busy != worker_lease.end()) {
        return event_name(event) + ": worker already holds a lease on stripe " +
               std::to_string(busy->second);
      }
      stripe_holder.emplace(event.stripe, event.worker);
      worker_lease.emplace(event.worker, event.stripe);
    } else if (event.kind == "done" || event.kind == "reclaim" ||
               (event.kind == "adopt" && event.worker != dist::LeaseEvent::npos)) {
      // Terminal events of a held lease must come from its holder.
      // (adopt with worker == npos is a coordinator-restart adoption of
      // an unleased published stripe.)
      const auto held = stripe_holder.find(event.stripe);
      if (held == stripe_holder.end()) {
        return event_name(event) + ": stripe was not leased";
      }
      if (held->second != event.worker) {
        return event_name(event) + ": stripe is leased to worker " +
               std::to_string(held->second) + ", not worker " + std::to_string(event.worker);
      }
      worker_lease.erase(held->second);
      stripe_holder.erase(held);
    } else if (event.kind == "dead") {
      // A dead worker's lease must already have been reclaimed (the
      // coordinator logs reclaim before dead) or it leaks.
      if (const auto busy = worker_lease.find(event.worker); busy != worker_lease.end()) {
        return event_name(event) + ": worker died still holding stripe " +
               std::to_string(busy->second) + " -- its lease was never reclaimed";
      }
      live.erase(event.worker);
    } else if (event.kind == "complete") {
      if (!stripe_holder.empty()) {
        return event_name(event) + ": run completed with stripe " +
               std::to_string(stripe_holder.begin()->first) + " still leased";
      }
    }
    // ready/retry/giveup/adopt(npos) carry no exclusivity state.
  }
  return std::nullopt;
}

std::optional<std::string> check_attempt_consistency(
    const std::vector<std::vector<std::string>>& attempts) {
  std::map<sweep::RecordKey, std::pair<std::size_t, const std::string*>> first_seen;
  for (std::size_t a = 0; a < attempts.size(); ++a) {
    for (const std::string& line : attempts[a]) {
      const auto key = sweep::record_key(line);
      if (!key) {
        return "attempt " + std::to_string(a) +
               " contains an incomplete record (scan the file with sweep::scan_records first)";
      }
      const auto [it, inserted] = first_seen.emplace(*key, std::make_pair(a, &line));
      if (!inserted && *it->second.second != line) {
        return key_name(*key) + " differs between attempt " + std::to_string(it->second.first) +
               " and attempt " + std::to_string(a) +
               " -- a reclaimed stripe did not reproduce its first attempt's bytes";
      }
    }
  }
  return std::nullopt;
}

}  // namespace check
