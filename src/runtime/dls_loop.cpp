#include "runtime/dls_loop.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace runtime {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

DlsLoopExecutor::DlsLoopExecutor(Options options)
    : options_(std::move(options)),
      threads_(options_.threads != 0 ? options_.threads : std::thread::hardware_concurrency()) {
  if (threads_ == 0) threads_ = 1;
}

DlsLoopExecutor::~DlsLoopExecutor() = default;

LoopStats DlsLoopExecutor::run(std::size_t n,
                               const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) throw std::invalid_argument("DlsLoopExecutor::run: empty loop");
  if (!body) throw std::invalid_argument("DlsLoopExecutor::run: missing body");

  if (technique_ && technique_n_ == n) {
    technique_->start_new_timestep();  // adaptive state persists
  } else {
    dls::Params params = options_.params;
    params.p = threads_;
    params.n = n;
    technique_ = dls::make_technique(options_.technique, params);
    technique_n_ = n;
    loop_count_ = 0;
  }
  ++loop_count_;

  LoopStats stats;
  stats.tasks_per_thread.assign(threads_, 0);
  stats.chunks_per_thread.assign(threads_, 0);
  stats.busy_seconds_per_thread.assign(threads_, 0.0);

  std::mutex dispatcher_mutex;  // guards technique_ and next_index
  std::size_t next_index = 0;
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  const Clock::time_point loop_start = Clock::now();

  auto worker = [&](std::size_t thread_id) {
    double pending_exec = 0.0;
    std::size_t pending_size = 0;
    for (;;) {
      std::size_t begin = 0;
      std::size_t size = 0;
      {
        const std::scoped_lock lock(dispatcher_mutex);
        if (pending_size > 0) {
          technique_->on_chunk_complete(dls::ChunkFeedback{
              thread_id, pending_size, pending_exec, seconds_since(loop_start)});
          pending_size = 0;
        }
        if (failed.load(std::memory_order_relaxed)) return;
        size = technique_->next_chunk(dls::Request{thread_id, seconds_since(loop_start)});
        if (size == 0) return;
        begin = next_index;
        next_index += size;
        if (options_.record_chunk_log) {
          stats.chunk_log.push_back(LoopChunk{thread_id, begin, size});
        }
      }
      const Clock::time_point chunk_start = Clock::now();
      try {
        body(begin, begin + size);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      pending_exec = seconds_since(chunk_start);
      pending_size = size;
      stats.tasks_per_thread[thread_id] += size;
      stats.chunks_per_thread[thread_id] += 1;
      stats.busy_seconds_per_thread[thread_id] += pending_exec;
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t) pool.emplace_back(worker, t);
  }  // join

  if (error) std::rethrow_exception(error);

  stats.wall_seconds = seconds_since(loop_start);
  for (std::size_t c : stats.chunks_per_thread) stats.chunks += c;
  return stats;
}

void DlsLoopExecutor::reset() {
  technique_.reset();
  technique_n_ = 0;
  loop_count_ = 0;
}

LoopStats DlsLoopExecutor::run_indexed(std::size_t n,
                                       const std::function<void(std::size_t)>& body) {
  return run(n, [&body](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

LoopStats parallel_for_dls(dls::Kind technique, std::size_t n,
                           const std::function<void(std::size_t)>& body, unsigned threads,
                           const dls::Params& params) {
  DlsLoopExecutor::Options options;
  options.technique = technique;
  options.params = params;
  options.threads = threads;
  DlsLoopExecutor executor(std::move(options));
  return executor.run_indexed(n, body);
}

}  // namespace runtime
