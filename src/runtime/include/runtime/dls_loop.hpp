#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "dls/params.hpp"
#include "dls/technique.hpp"

namespace runtime {

/// One dispatched chunk of a native loop, in dispatch order.
struct LoopChunk {
  std::size_t thread = 0;
  std::size_t first = 0;
  std::size_t size = 0;
};

/// Per-loop execution statistics of the native executor.
struct LoopStats {
  std::size_t chunks = 0;
  double wall_seconds = 0.0;
  std::vector<std::size_t> tasks_per_thread;
  std::vector<std::size_t> chunks_per_thread;
  std::vector<double> busy_seconds_per_thread;
  /// Filled if Options::record_chunk_log: every dispatched chunk, in
  /// dispatch order (the native analog of mw's chunk log; the shared
  /// check::BackendRun adapter verifies coverage invariants on it).
  std::vector<LoopChunk> chunk_log;
};

/// Native (non-simulated) self-scheduling loop executor: the deployment
/// form of the verified DLS techniques, in the spirit of OpenMP's
/// `schedule(runtime)` runtimes.
///
/// Worker threads request chunks of the iteration space [0, n) from a
/// shared dispatcher guarded by a mutex; the dispatcher consults the
/// configured dls::Technique, and measured chunk execution times are
/// fed back so the adaptive techniques (AWF-*, AF) work natively too.
///
/// The executor is reusable across loops: re-running with the same
/// iteration count starts a new *time step* (adaptive state persists,
/// exactly as in the simulated master-worker application); changing the
/// iteration count rebuilds the technique from scratch.
class DlsLoopExecutor {
 public:
  struct Options {
    dls::Kind technique = dls::Kind::kFAC2;
    /// Table I parameters; p is forced to the thread count and n to the
    /// loop's iteration count.
    dls::Params params;
    /// 0 = hardware concurrency.
    unsigned threads = 0;
    /// Record every dispatched chunk in LoopStats::chunk_log.
    bool record_chunk_log = false;
  };

  explicit DlsLoopExecutor(Options options);
  ~DlsLoopExecutor();
  DlsLoopExecutor(const DlsLoopExecutor&) = delete;
  DlsLoopExecutor& operator=(const DlsLoopExecutor&) = delete;

  /// Execute `body(begin, end)` for consecutive chunks covering [0, n).
  /// Each chunk runs on exactly one thread; chunks never overlap.  The
  /// first exception thrown by any chunk aborts the remaining
  /// dispatches (already-running chunks finish) and is rethrown here.
  LoopStats run(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

  /// Convenience: per-index body.
  LoopStats run_indexed(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Drop the current technique instance so the next run() starts from
  /// fresh scheduling state even with an unchanged n.  This is the
  /// boundary between independent *replicas* (exec::Backend resets
  /// between them), as opposed to the persisted-adaptive-state timestep
  /// semantics of consecutive run() calls.
  void reset();

  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] dls::Kind technique() const { return options_.technique; }
  /// Number of run() calls served by the current technique instance:
  /// increments while adaptive state persists (same n), resets to 1
  /// when a changed n rebuilds the technique.  0 before the first run.
  [[nodiscard]] std::size_t loop_count() const { return loop_count_; }

 private:
  Options options_;
  unsigned threads_;
  std::unique_ptr<dls::Technique> technique_;
  std::size_t technique_n_ = 0;
  std::size_t loop_count_ = 0;
};

/// One-shot convenience wrapper.
LoopStats parallel_for_dls(dls::Kind technique, std::size_t n,
                           const std::function<void(std::size_t)>& body, unsigned threads = 0,
                           const dls::Params& params = {});

}  // namespace runtime
