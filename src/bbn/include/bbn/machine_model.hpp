#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dls/params.hpp"
#include "workload/task_times.hpp"

namespace bbn {

/// Model of the 96-node BBN GP-1000 environment of the TSS publication
/// (Tzen & Ni 1993), the "values from original publication" side of the
/// paper's Figures 3-4.
///
/// The original measurements used *implicit* shared-memory parallelism:
/// processors self-dispatch chunks from a shared loop index.  The paper
/// names three mechanisms, absent from the explicit master-worker
/// model, as the likely cause of its unsuccessful reproduction
/// (Sections IV-A and VI); this model implements exactly those:
///
///   1. Dispatch serialization: the shared loop index is one memory
///      location; concurrent fetches serialize.  SS, CSS and TSS use
///      atomic instructions (cheap); GSS computes its chunk under a
///      lock (expensive), "the chunk calculation seems to have a strong
///      influence for GSS".
///   2. Contention growth: dispatch cost rises with the processor count
///      because the fetches traverse the multistage interconnection
///      network (a slight OMEGA variant).
///   3. Remote memory references: task execution is inflated by the
///      remote reference ratio (the publication pins it at 5%) times
///      the remote-access penalty.
struct MachineModel {
  /// Atomic fetch&add dispatch (SS, CSS, TSS): busy time per dispatch
  /// is atomic_base + atomic_per_pe * P.
  double atomic_base = 1.5e-6;
  double atomic_per_pe = 6.0e-8;
  /// Locked dispatch (GSS): lock_base + lock_per_pe * P held per
  /// dispatch; contended fetches queue.
  double lock_base = 2.0e-5;
  double lock_per_pe = 1.6e-6;
  /// Fraction of memory references that are remote, and the cost
  /// multiplier of a remote reference relative to a local one.
  double remote_ref_ratio = 0.05;
  double remote_penalty = 3.0;

  /// Effective task-time multiplier from remote references.
  [[nodiscard]] double inflation() const {
    return 1.0 + remote_ref_ratio * (remote_penalty - 1.0);
  }
  /// Dispatch hold time for a technique on P processors.
  [[nodiscard]] double dispatch_hold(dls::Kind technique, std::size_t pes) const;
};

struct Config {
  dls::Kind technique = dls::Kind::kSS;
  dls::Params params;  ///< p/n forced from pes/tasks
  std::size_t pes = 1;
  std::size_t tasks = 1;
  std::shared_ptr<const workload::TaskTimeGenerator> workload;
  MachineModel machine;
  std::uint64_t seed = 42;
};

/// Tzen-Ni measurements (their equations (11)-(13)): X is computing,
/// O scheduling, W waiting for synchronization; L the ideal work.
struct RunResult {
  double makespan = 0.0;
  double total_work = 0.0;  ///< sum of inflated task times
  std::size_t chunk_count = 0;
  std::vector<double> compute_time;    ///< X per processor
  std::vector<double> schedule_time;   ///< O per processor (queueing + hold)
  double speedup = 0.0;                ///< r      = L*P / sum(X+O+W)
  double overhead_degree = 0.0;        ///< Theta  = O*P / sum(X+O+W)
  double imbalance_degree = 0.0;       ///< Lambda = W*P / sum(X+O+W)
};

[[nodiscard]] RunResult run(const Config& config);

}  // namespace bbn
