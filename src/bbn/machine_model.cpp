#include "bbn/machine_model.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "dls/technique.hpp"
#include "workload/random_source.hpp"

namespace bbn {

double MachineModel::dispatch_hold(dls::Kind technique, std::size_t pes) const {
  const double p = static_cast<double>(pes);
  if (technique == dls::Kind::kGSS) return lock_base + lock_per_pe * p;
  return atomic_base + atomic_per_pe * p;
}

namespace {

struct FreeEvent {
  double time = 0.0;
  std::size_t pe = 0;
  std::size_t done_size = 0;
  double done_exec = 0.0;
};
struct Later {
  bool operator()(const FreeEvent& a, const FreeEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.pe > b.pe;
  }
};

}  // namespace

RunResult run(const Config& config) {
  if (config.pes == 0) throw std::invalid_argument("Config.pes must be >= 1");
  if (config.tasks == 0) throw std::invalid_argument("Config.tasks must be >= 1");
  if (!config.workload) throw std::invalid_argument("Config.workload is not set");

  dls::Params params = config.params;
  params.p = config.pes;
  params.n = config.tasks;
  const auto technique = dls::make_technique(config.technique, params);

  workload::XoshiroSource rng(config.seed);
  const std::vector<double> task_times = config.workload->generate(config.tasks, rng);
  const double inflation = config.machine.inflation();
  const double hold = config.machine.dispatch_hold(config.technique, config.pes);

  RunResult result;
  result.compute_time.assign(config.pes, 0.0);
  result.schedule_time.assign(config.pes, 0.0);

  std::priority_queue<FreeEvent, std::vector<FreeEvent>, Later> queue;
  for (std::size_t pe = 0; pe < config.pes; ++pe) queue.push(FreeEvent{0.0, pe, 0, 0.0});

  double dispatcher_free = 0.0;  // the serialized shared-index resource
  std::size_t next_task = 0;
  double makespan = 0.0;
  while (!queue.empty()) {
    const FreeEvent ev = queue.top();
    queue.pop();
    if (ev.done_size > 0) {
      technique->on_chunk_complete(
          dls::ChunkFeedback{ev.pe, ev.done_size, ev.done_exec, ev.time});
    }
    // Serialize on the shared loop index / dispatch lock.
    const double start = std::max(ev.time, dispatcher_free);
    const double dispatch_end = start + hold;
    dispatcher_free = dispatch_end;
    result.schedule_time[ev.pe] += dispatch_end - ev.time;  // queueing + hold
    makespan = std::max(makespan, dispatch_end);

    const std::size_t chunk = technique->next_chunk(dls::Request{ev.pe, dispatch_end});
    if (chunk == 0) continue;  // loop exhausted: processor leaves the loop
    double exec = 0.0;
    for (std::size_t i = next_task; i < next_task + chunk; ++i) exec += task_times[i];
    exec *= inflation;
    next_task += chunk;
    ++result.chunk_count;
    result.compute_time[ev.pe] += exec;
    result.total_work += exec;
    makespan = std::max(makespan, dispatch_end + exec);
    queue.push(FreeEvent{dispatch_end + exec, ev.pe, chunk, exec});
  }

  result.makespan = makespan;
  // Tzen-Ni metrics with sum(X + O + W) = P * makespan.
  const double p = static_cast<double>(config.pes);
  const double denom = p * makespan;
  double x_sum = 0.0;
  double o_sum = 0.0;
  for (std::size_t pe = 0; pe < config.pes; ++pe) {
    x_sum += result.compute_time[pe];
    o_sum += result.schedule_time[pe];
  }
  const double w_sum = std::max(0.0, denom - x_sum - o_sum);
  if (denom > 0.0) {
    result.speedup = result.total_work * p / denom;
    result.overhead_degree = o_sum * p / denom;
    result.imbalance_degree = w_sum * p / denom;
  }
  return result;
}

}  // namespace bbn
