#include "pool/executor.hpp"

#include <algorithm>
#include <cstdlib>

namespace pool {
namespace {

/// The executor whose region this thread is currently inside (caller or
/// worker).  A nested region on the same executor must run inline: the
/// pool's threads are all busy with the outer region, so waiting for
/// them would deadlock.
thread_local const Executor* tls_region_owner = nullptr;

struct RegionOwnerScope {
  const Executor* previous;
  explicit RegionOwnerScope(const Executor* owner) : previous(tls_region_owner) {
    tls_region_owner = owner;
  }
  ~RegionOwnerScope() { tls_region_owner = previous; }
};

}  // namespace

unsigned default_thread_count() {
  if (const char* env = std::getenv("DLS_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

Executor::Executor(unsigned threads)
    : width_(threads != 0 ? threads : default_thread_count()) {}

Executor::~Executor() {
  {
    const support::LockGuard lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  // std::jthread joins on destruction of workers_.
}

unsigned Executor::width() const { return width_.load(std::memory_order_relaxed); }

unsigned Executor::slot_count() const {
  const support::LockGuard lock(mutex_);
  return static_cast<unsigned>(workers_.size()) + 1;
}

void Executor::spawn_workers_locked(unsigned target_workers) {
  while (workers_.size() < target_workers) {
    const unsigned slot = static_cast<unsigned>(workers_.size()) + 1;
    workers_.emplace_back([this, slot] { worker_main(slot); });
  }
}

void Executor::reserve(unsigned threads) {
  const support::LockGuard lock(mutex_);
  if (threads > width_.load(std::memory_order_relaxed)) {
    width_.store(threads, std::memory_order_relaxed);
  }
  if (threads > 1) spawn_workers_locked(threads - 1);
}

bool Executor::try_join_region(Region& region, unsigned slot) {
  if (region.joined >= region.max_workers) return false;  // region has enough hands
  // A capped region never hands out a slot the caller did not size
  // per-slot state for (the pool may have grown since the caller
  // sampled slot_count()).
  if (region.slot_limit != 0 && slot >= region.slot_limit) return false;
  ++region.joined;
  ++region.active;
  return true;
}

bool Executor::leave_region(Region& region) { return --region.active == 0; }

void Executor::parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                            unsigned threads, std::size_t grain) {
  run_region(
      count, grain, threads, /*slot_limit=*/0,
      [](const void* f, std::size_t index, unsigned) {
        (*static_cast<const std::function<void(std::size_t)>*>(f))(index);
      },
      &body);
}

void Executor::parallel_for_slots(std::size_t count,
                                  const std::function<void(std::size_t, unsigned)>& body,
                                  unsigned threads, std::size_t grain, unsigned slot_limit) {
  run_region(
      count, grain, threads, slot_limit,
      [](const void* f, std::size_t index, unsigned slot) {
        (*static_cast<const std::function<void(std::size_t, unsigned)>*>(f))(index, slot);
      },
      &body);
}

void Executor::run_region(std::size_t count, std::size_t grain, unsigned threads,
                          unsigned slot_limit,
                          void (*invoke)(const void*, std::size_t, unsigned),
                          const void* body) {
  if (count == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (threads == 0) threads = width_.load(std::memory_order_relaxed);
  const std::size_t grains = (count + grain - 1) / grain;
  const unsigned participants =
      static_cast<unsigned>(std::min<std::size_t>(threads, grains));

  if (participants <= 1 || tls_region_owner == this) {
    // Serial fast path, and the safe re-entry rule: a region started
    // from inside another region of this pool runs inline (its threads
    // are busy with the outer region; waiting for them would deadlock).
    // Inline bodies always observe slot 0: the nested caller IS the
    // region's only participant, and per-slot state belongs to the
    // nested structure driving this region (e.g. its own BatchRunner),
    // not to the outer region's.
    for (std::size_t i = 0; i < count; ++i) invoke(body, i, 0);
    return;
  }

  // Whole regions are serialized across calling threads; the common
  // single-caller case never contends here.
  const support::LockGuard region_lock(region_mutex_);
  const RegionOwnerScope scope(this);

  Region region;
  region.count = count;
  region.grain = grain;
  region.invoke = invoke;
  region.body = body;
  region.max_workers = participants - 1;
  region.slot_limit = slot_limit;
  {
    const support::LockGuard lock(mutex_);
    if (threads > width_.load(std::memory_order_relaxed)) {
      width_.store(threads, std::memory_order_relaxed);
    }
    spawn_workers_locked(participants - 1);
    region_ = &region;
    ++generation_;
  }
  wake_cv_.notify_all();

  work(region, /*slot=*/0);

  {
    const support::LockGuard lock(mutex_);
    region_ = nullptr;  // no further joins; parked workers stay parked
    while (region.active != 0) done_cv_.wait(mutex_);
  }
  std::exception_ptr error;
  {
    // The drain above already ordered every worker's error write
    // before this read; the lock is for the analysis' benefit and is
    // uncontended by construction.
    const support::LockGuard lock(region.error_mutex);
    error = region.error;
  }
  if (error) std::rethrow_exception(error);
}

void Executor::work(Region& region, unsigned slot) {
  for (;;) {
    const std::size_t begin = region.next.fetch_add(region.grain, std::memory_order_relaxed);
    if (begin >= region.count || region.failed.load(std::memory_order_relaxed)) return;
    const std::size_t end = std::min(begin + region.grain, region.count);
    for (std::size_t i = begin; i < end; ++i) {
      // Re-check inside the grain: a sweep that failed elsewhere must
      // not keep simulating up to grain-1 extra replicas per thread.
      if (region.failed.load(std::memory_order_relaxed)) return;
      try {
        region.invoke(region.body, i, slot);
      } catch (...) {
        const support::LockGuard lock(region.error_mutex);
        if (!region.error) region.error = std::current_exception();
        region.failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
}

void Executor::worker_main(unsigned slot) {
  const RegionOwnerScope scope(this);  // nested use from a worker runs inline
  std::uint64_t seen_generation = 0;
  support::UniqueLock lock(mutex_);
  for (;;) {
    while (!stop_ && (region_ == nullptr || generation_ == seen_generation)) {
      wake_cv_.wait(mutex_);
    }
    if (stop_) return;
    seen_generation = generation_;
    Region* region = region_;
    if (!try_join_region(*region, slot)) continue;
    lock.unlock();
    work(*region, slot);
    lock.lock();
    // The region object lives on the caller's stack; the caller cannot
    // leave run_region until active drains to 0 under this mutex.
    if (leave_region(*region)) done_cv_.notify_all();
  }
}

Executor& Executor::shared() {
  static Executor executor;
  return executor;
}

}  // namespace pool
