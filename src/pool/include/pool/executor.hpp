#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "support/thread_annotations.hpp"

namespace pool {

/// Number of participants a pool defaults to: hardware concurrency,
/// overridable via the DLS_THREADS environment variable (deterministic
/// CI runs, the tools' --threads flags).  Always >= 1.
[[nodiscard]] unsigned default_thread_count();

/// A persistent, reusable work-claiming thread pool.
///
/// The committed baseline paid for its parallelism per call:
/// support::parallel_for spawned and joined a transient set of threads
/// every time it ran, so the thousands-of-replica grids of the paper's
/// Section III-B sweeps spent a measurable share of their wall clock in
/// thread creation instead of simulation.  An Executor makes
/// concurrency an amortized resource instead:
///
///  - **Lazy start, idle parking.**  No thread exists until the first
///    parallel region that needs one; between regions the workers park
///    on a condition variable.  A process that never runs a parallel
///    region pays nothing for Executor::shared().
///  - **Chunked atomic claiming.**  A region's [0, count) index space
///    is claimed in blocks of `grain` indices from one atomic counter
///    -- the same grain semantics (and the same in-grain cancellation
///    rule) the transient pool had, so callers keep their determinism
///    contract: every index runs exactly once, order unspecified.
///  - **Stable slot IDs.**  Every participating thread has a fixed slot
///    in [0, slot_count()): the calling thread is always slot 0 and
///    worker w is always slot w+1, for the lifetime of the pool.
///    Callers keep per-thread state (e.g. exec::BatchRunner's
///    per-(slot, backend) engine caches) in a plain vector indexed by
///    slot, with no locks and no thread-local lifetime headaches.
///  - **Exception capture.**  The first exception thrown by any body is
///    captured, the remaining work is cancelled (checked both per grain
///    claim and inside a grain), and the exception is rethrown on the
///    calling thread.
///  - **Safe re-entry.**  A parallel region started from inside another
///    region of the same pool (from a worker or from the calling
///    thread) runs inline and serially instead of deadlocking -- nested
///    parallelism collapses to the outer region's thread budget.
///
/// Concurrent regions from *different* threads on one Executor are
/// serialized (the second caller blocks until the first region ends).
class Executor {
 public:
  /// `threads` is the pool's width: the maximum number of participants
  /// (calling thread included) of a region.  0 = default_thread_count()
  /// resolved now.  No worker threads are started yet.
  explicit Executor(unsigned threads = 0);
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;
  ~Executor();

  /// Maximum participants of a region that does not ask for more.  A
  /// parallel call requesting more than width() grows the pool (the
  /// transient pool it replaces honored any request); slots of existing
  /// workers never change.
  [[nodiscard]] unsigned width() const;

  /// Upper bound (exclusive) of the slot IDs a region can currently
  /// observe: spawned workers + 1.  Grows with the pool, never shrinks.
  [[nodiscard]] unsigned slot_count() const;

  /// Spawn workers now so that slot_count() covers a region of
  /// `threads` participants, without running anything.  Lets callers
  /// size per-slot state before entering the region.
  void reserve(unsigned threads);

  /// Run body(i) for i in [0, count) across up to `threads`
  /// participants (0 = width()), claiming `grain` indices per grab.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& body,
                    unsigned threads = 0, std::size_t grain = 1);

  /// As parallel_for, with the participant's stable slot ID as the
  /// second argument.
  ///
  /// `slot_limit` (0 = uncapped) bounds the slot IDs the region can
  /// observe: workers whose slot is >= slot_limit sit the region out.
  /// Callers that size per-slot state from slot_count() MUST pass that
  /// size here -- another thread may grow the pool (reserve, a wider
  /// region) between the sizing and the region, and without the cap a
  /// newly spawned worker could join with a slot the caller never
  /// sized for.
  void parallel_for_slots(std::size_t count,
                          const std::function<void(std::size_t, unsigned)>& body,
                          unsigned threads = 0, std::size_t grain = 1,
                          unsigned slot_limit = 0);

  /// The process-wide pool (width = default_thread_count() at first
  /// use).  Constructed lazily; costs nothing -- no threads, no locks
  /// taken at startup -- until the first parallel region runs on it.
  [[nodiscard]] static Executor& shared();

 private:
  struct Region {
    // The configuration block (count..slot_limit) is written by the
    // caller BEFORE the region is published as region_ under
    // Executor::mutex_ and never mutated afterwards; workers only
    // reach it through the mutex acquire that showed them the pointer,
    // so the unguarded reads in work() are ordered.  The analysis (and
    // TSan) cannot express "immutable after publication", which is why
    // these fields carry no DLS_GUARDED_BY.
    std::size_t count = 0;
    std::size_t grain = 1;
    void (*invoke)(const void* body, std::size_t index, unsigned slot) = nullptr;
    const void* body = nullptr;
    unsigned max_workers = 0;  ///< workers (excl. caller) allowed to join
    unsigned slot_limit = 0;   ///< exclusive slot-ID bound (0 = uncapped)

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    support::Mutex error_mutex;
    std::exception_ptr error DLS_GUARDED_BY(error_mutex);
    // joined/active are guarded by Executor::mutex_ -- a nested struct
    // cannot name the owning instance's capability, so all access goes
    // through the DLS_REQUIRES(mutex_) helpers below.
    unsigned joined = 0;
    unsigned active = 0;
  };

  void run_region(std::size_t count, std::size_t grain, unsigned threads,
                  unsigned slot_limit, void (*invoke)(const void*, std::size_t, unsigned),
                  const void* body) DLS_EXCLUDES(region_mutex_, mutex_);
  void work(Region& region, unsigned slot) DLS_EXCLUDES(mutex_);
  void worker_main(unsigned slot) DLS_EXCLUDES(mutex_);
  void spawn_workers_locked(unsigned target_workers) DLS_REQUIRES(mutex_);
  /// Join `region` if it still wants hands and `slot` is inside its
  /// slot cap; counts the worker in joined/active on success.
  [[nodiscard]] bool try_join_region(Region& region, unsigned slot) DLS_REQUIRES(mutex_);
  /// Count a participant out; true when the region just drained.
  [[nodiscard]] bool leave_region(Region& region) DLS_REQUIRES(mutex_);

  mutable support::Mutex mutex_;
  support::CondVar wake_cv_;          ///< parks idle workers
  support::CondVar done_cv_;          ///< caller waits for region drain
  std::vector<std::jthread> workers_ DLS_GUARDED_BY(mutex_);
  Region* region_ DLS_GUARDED_BY(mutex_) = nullptr;
  std::uint64_t generation_ DLS_GUARDED_BY(mutex_) = 0;
  bool stop_ DLS_GUARDED_BY(mutex_) = false;
  std::atomic<unsigned> width_{1};    ///< atomic: read outside mutex_
  /// Serializes whole regions; always taken before mutex_.
  support::Mutex region_mutex_ DLS_ACQUIRED_BEFORE(mutex_);
};

}  // namespace pool
