// The factoring family: FAC, FAC2 (paper Section II), and the
// weighted/adaptive descendants WF, AWF, AWF-B, AWF-C that the paper
// lists for heterogeneous systems and time-stepping applications.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "techniques_internal.hpp"

namespace dls::detail {
namespace {

/// Common batch bookkeeping: factoring techniques schedule chunks in
/// batches of p; a new batch size is computed from the tasks remaining
/// when the previous batch has been fully handed out.
class BatchedFactoring : public Technique {
 public:
  explicit BatchedFactoring(const Params& params) : Technique(params) {}

 protected:
  std::size_t compute_chunk(const Request& request, std::size_t remaining,
                            std::size_t unfinished) override {
    if (batch_left_ == 0) {
      on_batch_boundary();
      batch_base_chunk_ = compute_batch_chunk(remaining, unfinished);
      batch_left_ = params().p;
      ++batch_index_;
    }
    --batch_left_;
    return scale_for_pe(request.pe, batch_base_chunk_);
  }

  void do_reset() override {
    reset_batches();
    on_factoring_reset();
  }

  void do_start_timestep() override {
    // New sweep over the n tasks: batches restart, but adaptive state
    // (owned by subclasses via on_factoring_reset) is preserved.
    reset_batches();
  }

  /// Size of the (unweighted) chunks of the next batch.
  virtual std::size_t compute_batch_chunk(std::size_t remaining, std::size_t unfinished) = 0;
  /// Weighted variants scale the base chunk per requesting PE.
  virtual std::size_t scale_for_pe(std::size_t /*pe*/, std::size_t base) { return base; }
  /// AWF-B adapts weights here.
  virtual void on_batch_boundary() {}
  virtual void on_factoring_reset() {}

  [[nodiscard]] std::size_t batch_index() const { return batch_index_; }

 private:
  void reset_batches() {
    batch_left_ = 0;
    batch_base_chunk_ = 0;
    batch_index_ = 0;
  }

  std::size_t batch_left_ = 0;
  std::size_t batch_base_chunk_ = 0;
  std::size_t batch_index_ = 0;
};

/// FAC -- factoring with known mean and variance (Hummel, Schonberg &
/// Flynn 1992).  For a batch starting with R remaining tasks:
///
///   b   = (p / (2*sqrt(R))) * (sigma/mu)
///   x_0 = 1 + b^2 + b*sqrt(b^2 + 2)       (first batch)
///   x_j = 2 + b^2 + b*sqrt(b^2 + 4)       (subsequent batches)
///   chunk = ceil( R / (x_j * p) )
///
/// With sigma = 0 this degenerates to x_0 = 1 (one batch of n/p blocks,
/// i.e. static chunking), the analytically optimal behaviour for
/// variance-free workloads.
class Factoring final : public BatchedFactoring {
 public:
  explicit Factoring(const Params& params) : BatchedFactoring(params) {
    if (params.mu <= 0.0) throw std::invalid_argument("FAC requires mu > 0");
    if (params.sigma < 0.0) throw std::invalid_argument("FAC requires sigma >= 0");
  }

  Kind kind() const override { return Kind::kFAC; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kR | kMu | kSigma;
  }

 protected:
  std::size_t compute_batch_chunk(std::size_t remaining, std::size_t) override {
    const double p = static_cast<double>(params().p);
    const double r = static_cast<double>(remaining);
    const double b = p / (2.0 * std::sqrt(r)) * (params().sigma / params().mu);
    const double x = batch_index() == 0 ? 1.0 + b * b + b * std::sqrt(b * b + 2.0)
                                        : 2.0 + b * b + b * std::sqrt(b * b + 4.0);
    return static_cast<std::size_t>(std::ceil(r / (x * p)));
  }
};

/// FAC2 -- practical factoring: each batch hands out half of the
/// remaining tasks in p equal chunks ("a decreasing factor ... of
/// x_j = 2 (FAC2), which works well in practice").
class Factoring2 final : public BatchedFactoring {
 public:
  explicit Factoring2(const Params& params) : BatchedFactoring(params) {}

  Kind kind() const override { return Kind::kFAC2; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kR;
  }

 protected:
  std::size_t compute_batch_chunk(std::size_t remaining, std::size_t) override {
    return (remaining + 2 * params().p - 1) / (2 * params().p);  // ceil(R / 2p)
  }
};

/// Normalizes weights so that their mean is 1 (sum = p); a PE with
/// weight w receives w times the unweighted factoring chunk.
std::vector<double> normalize_weights(std::vector<double> w, std::size_t p) {
  if (w.empty()) w.assign(p, 1.0);
  if (w.size() != p) {
    throw std::invalid_argument("weights size " + std::to_string(w.size()) +
                                " != p = " + std::to_string(p));
  }
  double sum = 0.0;
  for (double v : w) {
    if (!(v > 0.0)) throw std::invalid_argument("weights must be positive");
    sum += v;
  }
  const double scale = static_cast<double>(p) / sum;
  for (double& v : w) v *= scale;
  return w;
}

/// WF -- weighted factoring (Hummel et al. 1996): FAC2 batches, with
/// each PE's share scaled by its fixed relative speed weight.
class WeightedFactoring final : public BatchedFactoring {
 public:
  explicit WeightedFactoring(const Params& params) : BatchedFactoring(params) {
    weights_ = normalize_weights(params.weights, params.p);
  }

  Kind kind() const override { return Kind::kWF; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kR;  // plus the static weights, which predate execution
  }

 protected:
  std::size_t compute_batch_chunk(std::size_t remaining, std::size_t) override {
    return (remaining + 2 * params().p - 1) / (2 * params().p);
  }
  std::size_t scale_for_pe(std::size_t pe, std::size_t base) override {
    const double scaled = weights_[pe] * static_cast<double>(base);
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(scaled)));
  }

 private:
  std::vector<double> weights_;
};

/// AWF and its finer-grained variants AWF-B/C/D/E (Banicescu et al.
/// 2003; Carino & Banicescu 2008; the D/E variants per the LB4OMP
/// taxonomy).
///
/// Weighted factoring where the weights are *measured*: each PE's
/// weight is proportional to its observed execution rate
/// (tasks completed / time), renormalized to mean 1.  The variants
/// differ in when the weights refresh and what "time" counts:
///   AWF    at time-step boundaries (time-stepping applications),
///   AWF-B  at batch boundaries,        execution time only,
///   AWF-C  at every chunk completion,  execution time only,
///   AWF-D  at batch boundaries,        total chunk time (incl. h),
///   AWF-E  at every chunk completion,  total chunk time (incl. h).
/// PEs without measurements yet keep weight 1 relative to the measured
/// average.
class AdaptiveWeightedFactoring final : public BatchedFactoring {
 public:
  AdaptiveWeightedFactoring(const Params& params, Kind variant)
      : BatchedFactoring(params), variant_(variant) {
    init_state();
  }

  Kind kind() const override { return variant_; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    const bool overhead_aware = variant_ == Kind::kAWFD || variant_ == Kind::kAWFE;
    return kP | kR | (overhead_aware ? kH : 0u);  // plus runtime measurements
  }

  void on_timestep_boundary() override {
    if (variant_ == Kind::kAWF) refresh_weights();
  }

 protected:
  std::size_t compute_batch_chunk(std::size_t remaining, std::size_t) override {
    return (remaining + 2 * params().p - 1) / (2 * params().p);
  }
  std::size_t scale_for_pe(std::size_t pe, std::size_t base) override {
    const double scaled = weights_[pe] * static_cast<double>(base);
    return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(scaled)));
  }
  void on_batch_boundary() override {
    if (variant_ == Kind::kAWFB || variant_ == Kind::kAWFD) refresh_weights();
  }
  void do_on_chunk_complete(const ChunkFeedback& fb) override {
    const bool overhead_aware = variant_ == Kind::kAWFD || variant_ == Kind::kAWFE;
    tasks_done_[fb.pe] += static_cast<double>(fb.size);
    time_spent_[fb.pe] += fb.exec_time + (overhead_aware ? params().h : 0.0);
    if (variant_ == Kind::kAWFC || variant_ == Kind::kAWFE) refresh_weights();
  }
  void on_factoring_reset() override { init_state(); }

 private:
  void init_state() {
    weights_.assign(params().p, 1.0);
    tasks_done_.assign(params().p, 0.0);
    time_spent_.assign(params().p, 0.0);
  }

  void refresh_weights() {
    const std::size_t p = params().p;
    std::vector<double> rate(p, 0.0);
    double rate_sum = 0.0;
    std::size_t measured = 0;
    for (std::size_t i = 0; i < p; ++i) {
      if (time_spent_[i] > 0.0) {
        rate[i] = tasks_done_[i] / time_spent_[i];
        rate_sum += rate[i];
        ++measured;
      }
    }
    if (measured == 0) return;
    const double mean_rate = rate_sum / static_cast<double>(measured);
    for (std::size_t i = 0; i < p; ++i) {
      if (rate[i] == 0.0) rate[i] = mean_rate;  // unmeasured PEs assumed average
    }
    const double total = std::accumulate(rate.begin(), rate.end(), 0.0);
    for (std::size_t i = 0; i < p; ++i) {
      weights_[i] = rate[i] * static_cast<double>(p) / total;
    }
  }

  Kind variant_;
  std::vector<double> weights_;
  std::vector<double> tasks_done_;
  std::vector<double> time_spent_;
};

}  // namespace

std::unique_ptr<Technique> make_fac(const Params& params) {
  return std::make_unique<Factoring>(params);
}
std::unique_ptr<Technique> make_fac2(const Params& params) {
  return std::make_unique<Factoring2>(params);
}
std::unique_ptr<Technique> make_wf(const Params& params) {
  return std::make_unique<WeightedFactoring>(params);
}
std::unique_ptr<Technique> make_awf(const Params& params, Kind variant) {
  return std::make_unique<AdaptiveWeightedFactoring>(params, variant);
}

}  // namespace dls::detail
