#include "dls/technique.hpp"

#include <algorithm>
#include <stdexcept>

#include "techniques_internal.hpp"

namespace dls {

Technique::Technique(const Params& params) : params_(params) {
  if (params_.p == 0) throw std::invalid_argument("Params.p must be >= 1");
  if (params_.n == 0) throw std::invalid_argument("Params.n must be >= 1");
}

std::size_t Technique::next_chunk(const Request& request) {
  if (request.pe >= params_.p) {
    throw std::invalid_argument("Request.pe " + std::to_string(request.pe) +
                                " out of range (p = " + std::to_string(params_.p) + ")");
  }
  const std::size_t r = remaining();
  if (r == 0) return 0;
  std::size_t size = compute_chunk(request, r, unfinished());
  size = std::clamp<std::size_t>(size, 1, r);
  allocated_ += size;
  ++chunks_issued_;
  return size;
}

void Technique::on_chunk_complete(const ChunkFeedback& feedback) {
  if (feedback.size == 0) return;
  if (completed_ + feedback.size > allocated_) {
    throw std::logic_error("on_chunk_complete: more tasks completed than allocated");
  }
  completed_ += feedback.size;
  do_on_chunk_complete(feedback);
}

void Technique::reclaim(std::size_t size) {
  if (completed_ + size > allocated_) {
    throw std::logic_error("reclaim: returning more tasks than are outstanding");
  }
  allocated_ -= size;
}

void Technique::reset() {
  allocated_ = 0;
  completed_ = 0;
  chunks_issued_ = 0;
  do_reset();
}

void Technique::start_new_timestep() {
  allocated_ = 0;
  completed_ = 0;
  chunks_issued_ = 0;
  do_start_timestep();
  on_timestep_boundary();
}

std::string Technique::name() const { return to_string(kind()); }

std::unique_ptr<Technique> make_technique(Kind kind, const Params& params) {
  using namespace detail;
  switch (kind) {
    case Kind::kStatic: return make_static(params);
    case Kind::kSS: return make_ss(params);
    case Kind::kCSS: return make_css(params);
    case Kind::kFSC: return make_fsc(params);
    case Kind::kGSS: return make_gss(params);
    case Kind::kTSS: return make_tss(params);
    case Kind::kFAC: return make_fac(params);
    case Kind::kFAC2: return make_fac2(params);
    case Kind::kBOLD: return make_bold(params);
    case Kind::kTAP: return make_tap(params);
    case Kind::kWF: return make_wf(params);
    case Kind::kAWF: return make_awf(params, Kind::kAWF);
    case Kind::kAWFB: return make_awf(params, Kind::kAWFB);
    case Kind::kAWFC: return make_awf(params, Kind::kAWFC);
    case Kind::kAWFD: return make_awf(params, Kind::kAWFD);
    case Kind::kAWFE: return make_awf(params, Kind::kAWFE);
    case Kind::kAF: return make_af(params);
    case Kind::kMFSC: return make_mfsc(params);
    case Kind::kTFSS: return make_tfss(params);
    case Kind::kRND: return make_rnd(params);
  }
  throw std::invalid_argument("make_technique: bad Kind");
}

std::unique_ptr<Technique> make_technique(const std::string& name, const Params& params) {
  return make_technique(kind_from_string(name), params);
}

}  // namespace dls
