#pragma once

// Internal factory hooks: one constructor function per technique
// translation unit.  Only technique.cpp includes this header.

#include <memory>

#include "dls/technique.hpp"

namespace dls::detail {

std::unique_ptr<Technique> make_static(const Params& params);
std::unique_ptr<Technique> make_ss(const Params& params);
std::unique_ptr<Technique> make_css(const Params& params);
std::unique_ptr<Technique> make_fsc(const Params& params);
std::unique_ptr<Technique> make_gss(const Params& params);
std::unique_ptr<Technique> make_tss(const Params& params);
std::unique_ptr<Technique> make_fac(const Params& params);
std::unique_ptr<Technique> make_fac2(const Params& params);
std::unique_ptr<Technique> make_bold(const Params& params);
std::unique_ptr<Technique> make_tap(const Params& params);
std::unique_ptr<Technique> make_wf(const Params& params);
std::unique_ptr<Technique> make_awf(const Params& params, Kind variant);
std::unique_ptr<Technique> make_af(const Params& params);
std::unique_ptr<Technique> make_mfsc(const Params& params);
std::unique_ptr<Technique> make_tfss(const Params& params);
std::unique_ptr<Technique> make_rnd(const Params& params);

}  // namespace dls::detail
