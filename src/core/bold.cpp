// BOLD (Hagerup 1997) -- the most elaborate non-adaptive technique in
// the paper's Table II, and the one whose publication provides the
// successfully reproduced experiments (paper Figures 5-8).
//
// RECONSTRUCTION NOTE (see DESIGN.md, substitution table).  The original
// publication specifies BOLD through a derivation whose final pseudocode
// is not fully recoverable from the surviving literature.  This
// implementation keeps the published structure and constants:
//
//   * the variance coefficients  a = 2*sigma^2/mu^2  and
//     b = 8a*ln(8a)  (clamped at 0 for low-variance workloads),
//   * the overhead coefficients  c1 = h/(mu*ln 2),
//     c2 = sqrt(2*pi)*c1,  c3 = ln(c2),
//   * the bookkeeping of both r (unallocated tasks) and m (unfinished
//     tasks, i.e. unallocated + in execution) -- the `m` column that
//     Table II of the paper attributes uniquely to BOLD;
//
// and combines them the way the derivation motivates:
//
//   1. start from the fair share t1 = r/p;
//   2. shrink it by a variance safety margin, choosing K such that
//      K + sqrt(b*K) = t1, whose closed form is
//      K = t1 + b/2 - sqrt(b*t1 + b^2/4)  ("be bold, but leave room
//      for the expected overshoot of the last chunks");
//   3. never let chunks shrink below the overhead floor
//      c1 * (c3 + ln(m/p)) -- the term through which the per-allocation
//      overhead h and the unfinished count m keep the tail chunks large
//      enough that scheduling overhead cannot dominate.
//
// The reconstruction preserves BOLD's published qualitative behaviour:
// bolder initial chunks than factoring, geometric decrease, and a
// floored tail, yielding the flattest wasted-time curves of the eight
// techniques in the reproduced experiments.

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "techniques_internal.hpp"

namespace dls::detail {
namespace {

class Bold final : public Technique {
 public:
  explicit Bold(const Params& params) : Technique(params) {
    if (params.mu <= 0.0) throw std::invalid_argument("BOLD requires mu > 0");
    if (params.sigma < 0.0) throw std::invalid_argument("BOLD requires sigma >= 0");
    if (params.h < 0.0) throw std::invalid_argument("BOLD requires h >= 0");
    const double a = 2.0 * (params.sigma * params.sigma) / (params.mu * params.mu);
    b_ = a > 0.0 ? 8.0 * a * std::log(8.0 * a) : 0.0;
    if (b_ < 0.0) b_ = 0.0;  // 8a < 1: variance too small to matter
    c1_ = params.h > 0.0 ? params.h / (params.mu * std::numbers::ln2) : 0.0;
    const double c2 = std::sqrt(2.0 * std::numbers::pi) * c1_;
    c3_ = c2 > 0.0 ? std::log(c2) : 0.0;
  }

  Kind kind() const override { return Kind::kBOLD; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kR | kH | kMu | kSigma | kM;
  }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t remaining, std::size_t unfinished) override {
    const double p = static_cast<double>(params().p);
    const double t1 = static_cast<double>(remaining) / p;
    if (t1 <= 1.0) return 1;

    // Variance safety margin: solve K + sqrt(b*K) = t1 for K.
    const double k_var = t1 + b_ / 2.0 - std::sqrt(b_ * t1 + b_ * b_ / 4.0);

    // Overhead floor: grows with the log of the per-PE share of the
    // still-unfinished work m/p, so tail chunks amortize h.
    const double share_unfinished = std::max(static_cast<double>(unfinished) / p, 1.0);
    const double k_overhead = c1_ * (c3_ + std::log(share_unfinished));

    const double k = std::max({k_var, k_overhead, 1.0});
    return static_cast<std::size_t>(std::llround(k));
  }

 private:
  double b_ = 0.0;
  double c1_ = 0.0;
  double c3_ = 0.0;
};

}  // namespace

std::unique_ptr<Technique> make_bold(const Params& params) {
  return std::make_unique<Bold>(params);
}

}  // namespace dls::detail
