// GSS(k) and TSS: the decreasing-chunk techniques developed for uneven
// PE starting times (paper Section II).

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "techniques_internal.hpp"

namespace dls::detail {
namespace {

/// GSS(k) -- guided self scheduling (Polychronopoulos & Kuck 1987).
///
/// Each request receives ceil(r/p) tasks, where r is the number of
/// still-unscheduled tasks; the k parameter bounds the chunk from below
/// (GSS(1) is plain GSS).  The paper's Figures 3-4 evaluate GSS(1),
/// GSS(5) and GSS(80).
class GuidedSelfScheduling final : public Technique {
 public:
  explicit GuidedSelfScheduling(const Params& params) : Technique(params) {
    min_chunk_ = std::max<std::size_t>(1, params.gss_min_chunk);
  }

  Kind kind() const override { return Kind::kGSS; }
  std::string name() const override {
    return min_chunk_ == 1 ? "GSS" : "GSS(" + std::to_string(min_chunk_) + ")";
  }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kR;
  }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t remaining, std::size_t) override {
    const std::size_t guided = (remaining + params().p - 1) / params().p;
    return std::max(guided, min_chunk_);
  }

 private:
  std::size_t min_chunk_ = 1;
};

/// TSS(f, l) -- trapezoid self scheduling (Tzen & Ni 1993).
///
/// Chunk sizes decrease linearly from the first size f to the last
/// size l.  With N = ceil(2n/(f+l)) chunks in total, consecutive chunks
/// differ by delta = (f-l)/(N-1).  The publication's recommended
/// (conservative) defaults are f = ceil(n/(2p)) and l = 1, selected
/// here when Params.tss_first/tss_last are left at 0.
class TrapezoidSelfScheduling final : public Technique {
 public:
  explicit TrapezoidSelfScheduling(const Params& params) : Technique(params) {
    f_ = params.tss_first != 0
             ? params.tss_first
             : std::max<std::size_t>(1, (params.n + 2 * params.p - 1) / (2 * params.p));
    l_ = params.tss_last != 0 ? params.tss_last : 1;
    if (l_ > f_) {
      throw std::invalid_argument("TSS: last chunk size l must not exceed first chunk size f");
    }
    num_chunks_ = std::max<std::size_t>(1, (2 * params.n + f_ + l_ - 1) / (f_ + l_));
    delta_ = num_chunks_ > 1 ? static_cast<double>(f_ - l_) / static_cast<double>(num_chunks_ - 1)
                             : 0.0;
  }

  Kind kind() const override { return Kind::kTSS; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kN | kFirst | kLast;
  }

  [[nodiscard]] std::size_t first_chunk() const { return f_; }
  [[nodiscard]] std::size_t last_chunk() const { return l_; }
  [[nodiscard]] std::size_t planned_chunks() const { return num_chunks_; }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t, std::size_t) override {
    const std::size_t i = chunks_issued();
    const double size = static_cast<double>(f_) - delta_ * static_cast<double>(i);
    const auto rounded = static_cast<std::size_t>(std::llround(std::max(size, 1.0)));
    return std::max(rounded, l_);
  }

 private:
  std::size_t f_ = 1;
  std::size_t l_ = 1;
  std::size_t num_chunks_ = 1;
  double delta_ = 0.0;
};

}  // namespace

std::unique_ptr<Technique> make_gss(const Params& params) {
  return std::make_unique<GuidedSelfScheduling>(params);
}
std::unique_ptr<Technique> make_tss(const Params& params) {
  return std::make_unique<TrapezoidSelfScheduling>(params);
}

}  // namespace dls::detail
