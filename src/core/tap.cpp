// TAP -- the taper strategy (Lucco 1992), "a further development of
// FAC" (paper Section II); one of the techniques the paper defers to
// future-work verification.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "techniques_internal.hpp"

namespace dls::detail {
namespace {

/// TAP computes, per request, the fair share T = r/p tapered downward
/// by a probabilistic margin so that the chunk finishes with high
/// probability before the ideal per-PE share would:
///
///   alpha = v_alpha * (sigma / mu)
///   K     = T + alpha^2/2 - alpha * sqrt(2T + alpha^2/4)
///
/// v_alpha tunes the confidence level (Lucco suggests values around
/// 1.3 for ~90%).  With sigma = 0 this reduces to GSS's r/p.
class Taper final : public Technique {
 public:
  explicit Taper(const Params& params) : Technique(params) {
    if (params.mu <= 0.0) throw std::invalid_argument("TAP requires mu > 0");
    if (params.sigma < 0.0) throw std::invalid_argument("TAP requires sigma >= 0");
    if (params.tap_v_alpha < 0.0) throw std::invalid_argument("TAP requires v_alpha >= 0");
    alpha_ = params.tap_v_alpha * params.sigma / params.mu;
  }

  Kind kind() const override { return Kind::kTAP; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kR | kMu | kSigma;
  }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t remaining, std::size_t) override {
    const double t = static_cast<double>(remaining) / static_cast<double>(params().p);
    const double k =
        t + alpha_ * alpha_ / 2.0 - alpha_ * std::sqrt(2.0 * t + alpha_ * alpha_ / 4.0);
    return static_cast<std::size_t>(std::ceil(std::max(k, 1.0)));
  }

 private:
  double alpha_ = 0.0;
};

}  // namespace

std::unique_ptr<Technique> make_tap(const Params& params) {
  return std::make_unique<Taper>(params);
}

}  // namespace dls::detail
