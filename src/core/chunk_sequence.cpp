#include "dls/chunk_sequence.hpp"

namespace dls {

std::vector<ChunkRecord> chunk_sequence(Technique& technique, double task_time) {
  technique.reset();
  std::vector<ChunkRecord> out;
  const std::size_t p = technique.params().p;
  double now = 0.0;
  std::size_t pe = 0;
  for (;;) {
    const std::size_t size = technique.next_chunk(Request{pe, now});
    if (size == 0) break;
    out.push_back({pe, size});
    const double exec = task_time * static_cast<double>(size);
    now += exec;
    technique.on_chunk_complete(ChunkFeedback{pe, size, exec, now});
    pe = (pe + 1) % p;
  }
  return out;
}

std::vector<std::size_t> chunk_sizes(Technique& technique, double task_time) {
  std::vector<std::size_t> out;
  for (const ChunkRecord& rec : chunk_sequence(technique, task_time)) out.push_back(rec.size);
  return out;
}

}  // namespace dls
