// AF -- adaptive factoring (Banicescu & Liu 2000): "adaptive at
// execution time against algorithmic variances as well as to systemic
// variances, by dynamically estimating for each PE the new mean and
// the new variance of the task execution times after the execution of
// each chunk" (paper Section II).  Deferred to future work by the
// paper; implemented here as an extension.

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "techniques_internal.hpp"

namespace dls::detail {
namespace {

/// Per-PE running estimate of the task-time mean and variance.
///
/// The master observes only chunk aggregates (size s, elapsed time t),
/// so each completed chunk contributes one sample x = t/s of the
/// per-task mean, weighted by s.  Under the CLT, var(x) ~ sigma^2/s,
/// hence the per-task variance is recovered as the weighted variance of
/// the x samples multiplied by the average chunk size.  This estimator
/// is documented in DESIGN.md as a substitution for per-iteration
/// timing, which a message-passing master never sees.
class PerTaskEstimator {
 public:
  void add_chunk(std::size_t size, double exec_time) {
    const double w = static_cast<double>(size);
    const double x = exec_time / w;
    weight_ += w;
    ++chunks_;
    const double delta = x - mean_;
    mean_ += delta * (w / weight_);
    m2_ += w * delta * (x - mean_);
  }

  [[nodiscard]] bool ready() const { return chunks_ >= 2; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    if (chunks_ < 2 || weight_ <= 0.0) return 0.0;
    const double var_of_means = m2_ / weight_;
    const double avg_chunk = weight_ / static_cast<double>(chunks_);
    return var_of_means * avg_chunk;
  }
  void reset() { *this = PerTaskEstimator{}; }

 private:
  double weight_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  std::size_t chunks_ = 0;
};

/// AF chunk rule.  With per-PE estimates (mu_j, sigma_j^2), a request
/// from PE i receives
///
///   D = sum_j sigma_j^2 / mu_j
///   T = R / sum_j (1 / mu_j)
///   K_i = (D + 2T - sqrt(D^2 + 4*D*T)) / (2 * mu_i)
///
/// (Banicescu & Liu 2000).  PEs without estimates yet use the mean of
/// the measured PEs, or bootstrap probing chunks of ceil(R/(2p^2))
/// before any measurements exist.
class AdaptiveFactoring final : public Technique {
 public:
  explicit AdaptiveFactoring(const Params& params) : Technique(params) {
    estimators_.resize(params.p);
  }

  Kind kind() const override { return Kind::kAF; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kR;  // everything else is measured at execution time
  }

 protected:
  std::size_t compute_chunk(const Request& request, std::size_t remaining, std::size_t) override {
    const std::size_t p = params().p;
    const double r = static_cast<double>(remaining);

    // Collect measured estimates; fall back to probing chunks until at
    // least one PE has two completed chunks.
    double mean_mu = 0.0;
    std::size_t measured = 0;
    for (const auto& est : estimators_) {
      if (est.ready() && est.mean() > 0.0) {
        mean_mu += est.mean();
        ++measured;
      }
    }
    if (measured == 0) {
      const auto probe = static_cast<std::size_t>(
          std::ceil(r / (2.0 * static_cast<double>(p) * static_cast<double>(p))));
      return std::max<std::size_t>(1, probe);
    }
    mean_mu /= static_cast<double>(measured);

    double d = 0.0;
    double inv_mu_sum = 0.0;
    for (const auto& est : estimators_) {
      const double mu_j = (est.ready() && est.mean() > 0.0) ? est.mean() : mean_mu;
      const double var_j = (est.ready() && est.mean() > 0.0) ? est.variance() : 0.0;
      d += var_j / mu_j;
      inv_mu_sum += 1.0 / mu_j;
    }
    const double t = r / inv_mu_sum;
    const double mu_i = (estimators_[request.pe].ready() && estimators_[request.pe].mean() > 0.0)
                            ? estimators_[request.pe].mean()
                            : mean_mu;
    const double k = (d + 2.0 * t - std::sqrt(d * d + 4.0 * d * t)) / (2.0 * mu_i);
    return static_cast<std::size_t>(std::ceil(std::max(k, 1.0)));
  }

  void do_on_chunk_complete(const ChunkFeedback& fb) override {
    if (fb.exec_time > 0.0) estimators_[fb.pe].add_chunk(fb.size, fb.exec_time);
  }

  void do_reset() override {
    for (auto& est : estimators_) est.reset();
  }

  void do_start_timestep() override {
    // Estimators persist across time steps: AF keeps refining its
    // per-PE mean/variance estimates over the whole application run.
  }

 private:
  std::vector<PerTaskEstimator> estimators_;
};

}  // namespace

std::unique_ptr<Technique> make_af(const Params& params) {
  return std::make_unique<AdaptiveFactoring>(params);
}

}  // namespace dls::detail
