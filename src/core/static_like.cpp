// STAT, SS, CSS(k), and FSC: the techniques whose chunk size is fixed
// before execution starts (paper Section II).

#include <algorithm>
#include <cmath>
#include <numbers>

#include "techniques_internal.hpp"

namespace dls::detail {
namespace {

/// STAT -- static chunking: n/p tasks per PE, assigned once.
///
/// "The coarse grained approach is static chunking (STAT), where n/p
/// chunks of tasks are assigned to each PE before computation starts."
/// The first p requests receive the p pre-computed blocks (remainder
/// spread over the first n mod p blocks); any further request finds no
/// remaining work.
class StaticChunking final : public Technique {
 public:
  explicit StaticChunking(const Params& params) : Technique(params) {}

  Kind kind() const override { return Kind::kStatic; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kN;
  }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t, std::size_t) override {
    const std::size_t p = params().p;
    const std::size_t n = params().n;
    const std::size_t block = chunks_issued();  // 0-based index of this block
    if (block >= p) return 0;                    // extra requesters get nothing
    return n / p + (block < n % p ? 1 : 0);
  }
};

/// SS -- (pure) self scheduling: one task at a time.
///
/// "The very fine grained approach is self scheduling (SS), where each
/// of the n tasks is dynamically assigned to an available PE."
class SelfScheduling final : public Technique {
 public:
  explicit SelfScheduling(const Params& params) : Technique(params) {}

  Kind kind() const override { return Kind::kSS; }
  unsigned required_mask() const override { return 0; }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t, std::size_t) override { return 1; }
};

/// CSS(k) -- chunk self scheduling: fixed chunk size k chosen by the
/// programmer.  The TSS publication's experiments use k = n/p, which is
/// the default when Params.css_chunk == 0.
class ChunkSelfScheduling final : public Technique {
 public:
  explicit ChunkSelfScheduling(const Params& params) : Technique(params) {
    k_ = params.css_chunk != 0
             ? params.css_chunk
             : std::max<std::size_t>(1, (params.n + params.p - 1) / params.p);
  }

  Kind kind() const override { return Kind::kCSS; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kN;  // only via the default k = n/p; not part of paper Table II
  }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t, std::size_t) override { return k_; }

 private:
  std::size_t k_ = 1;
};

/// FSC -- fixed size chunking (Kruskal & Weiss 1985).
///
/// The analytically optimal fixed chunk size for tasks with mean mu and
/// standard deviation sigma under per-allocation overhead h:
///
///   k_opt = ( sqrt(2) * n * h / (sigma * p * sqrt(ln p)) )^(2/3)
///
/// Degenerate inputs fall back to the variance-free optimum n/p:
/// with sigma = 0 or h = 0 the formula diverges, and its derivation
/// assumes p >= 2 (ln p > 0).  The result is always clamped to
/// [1, ceil(n/p)] -- a fixed chunk larger than n/p would leave PEs idle
/// from the start.
class FixedSizeChunking final : public Technique {
 public:
  explicit FixedSizeChunking(const Params& params) : Technique(params) {
    const double n = static_cast<double>(params.n);
    const double p = static_cast<double>(params.p);
    const std::size_t fair_share =
        std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(n / p)));
    if (params.sigma <= 0.0 || params.h <= 0.0 || params.p < 2) {
      k_ = fair_share;
      return;
    }
    const double raw =
        std::pow(std::numbers::sqrt2 * n * params.h / (params.sigma * p * std::sqrt(std::log(p))),
                 2.0 / 3.0);
    const auto k = static_cast<std::size_t>(std::ceil(raw));
    k_ = std::clamp<std::size_t>(k, 1, fair_share);
  }

  Kind kind() const override { return Kind::kFSC; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kN | kH | kSigma;
  }

  [[nodiscard]] std::size_t chunk_size() const { return k_; }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t, std::size_t) override { return k_; }

 private:
  std::size_t k_ = 1;
};

}  // namespace

std::unique_ptr<Technique> make_static(const Params& params) {
  return std::make_unique<StaticChunking>(params);
}
std::unique_ptr<Technique> make_ss(const Params& params) {
  return std::make_unique<SelfScheduling>(params);
}
std::unique_ptr<Technique> make_css(const Params& params) {
  return std::make_unique<ChunkSelfScheduling>(params);
}
std::unique_ptr<Technique> make_fsc(const Params& params) {
  return std::make_unique<FixedSizeChunking>(params);
}

}  // namespace dls::detail
