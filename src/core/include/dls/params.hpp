#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dls {

/// The DLS techniques studied by the paper (Table II) plus the
/// techniques it defers to future work (TAP and the adaptive family),
/// which this library also implements.
enum class Kind {
  kStatic,   // STAT: static chunking, one block of ~n/p per PE
  kSS,       // SS:   self scheduling, one task at a time
  kCSS,      // CSS(k): chunk self scheduling, fixed programmer-chosen k
  kFSC,      // FSC:  fixed size chunking (Kruskal & Weiss 1985)
  kGSS,      // GSS(k): guided self scheduling (Polychronopoulos & Kuck 1987)
  kTSS,      // TSS:  trapezoid self scheduling (Tzen & Ni 1993)
  kFAC,      // FAC:  factoring with known mu/sigma (Hummel et al. 1992)
  kFAC2,     // FAC2: practical factoring, halving batches
  kBOLD,     // BOLD: Hagerup 1997
  kTAP,      // TAP:  taper (Lucco 1992)            [future work in the paper]
  kWF,       // WF:   weighted factoring (Hummel et al. 1996)
  kAWF,      // AWF:  adaptive weighted factoring, per time step
  kAWFB,     // AWF-B: weights adapted per batch
  kAWFC,     // AWF-C: weights adapted per chunk
  kAWFD,     // AWF-D: per batch, overhead-aware chunk times
  kAWFE,     // AWF-E: per chunk, overhead-aware chunk times
  kAF,       // AF:   adaptive factoring (Banicescu & Liu 2000)
  kMFSC,     // mFSC: fixed chunk sized to FAC2's chunk count
  kTFSS,     // TFSS: trapezoid factoring self scheduling (TSS in batches)
  kRND,      // RND:  uniformly random chunk sizes (stress baseline)
};

/// Canonical upper-case names as used in the paper ("STAT", "SS", ...).
[[nodiscard]] std::string to_string(Kind kind);
/// Parse a canonical name; throws std::invalid_argument for unknown names.
[[nodiscard]] Kind kind_from_string(const std::string& name);
/// All kinds, in the paper's presentation order.
[[nodiscard]] const std::vector<Kind>& all_kinds();
/// The eight techniques of the BOLD-publication experiments (Figs 5-8).
[[nodiscard]] const std::vector<Kind>& bold_publication_kinds();

/// Scheduling parameters in the notation of paper Table I.
///
///   p      number of PEs
///   n      number of tasks
///   h      scheduling overhead per scheduling operation [s]
///   mu     mean of the task execution times [s]
///   sigma  standard deviation of the task execution times [s]
///   f, l   first and last chunk size (TSS)
///
/// plus the technique-specific knobs that the reproduced experiments
/// vary (CSS chunk size, GSS minimum chunk size, TAP's v_alpha, WF
/// weights).
struct Params {
  std::size_t p = 1;
  std::size_t n = 0;
  double h = 0.0;
  double mu = 1.0;
  double sigma = 0.0;

  /// CSS(k): the programmer-chosen chunk size; 0 selects the TSS
  /// publication's convention k = ceil(n/p).
  std::size_t css_chunk = 0;
  /// GSS(k): smallest chunk size GSS is allowed to schedule (the value
  /// in parentheses in the paper's Figures 3-4); plain GSS is GSS(1).
  std::size_t gss_min_chunk = 1;
  /// TSS first/last chunk sizes; 0 selects the defaults f = ceil(n/(2p))
  /// and l = 1 from the TSS publication.
  std::size_t tss_first = 0;
  std::size_t tss_last = 0;
  /// TAP: the v_alpha multiplier in alpha = v_alpha * sigma / mu.
  double tap_v_alpha = 1.3;
  /// WF: fixed relative PE weights (empty = all equal).  Values are
  /// normalized internally so that their mean is 1.
  std::vector<double> weights;
  /// RND: chunk-size bounds and deterministic seed.  rnd_max = 0
  /// selects the conventional upper bound ceil(n/p).
  std::size_t rnd_min = 1;
  std::size_t rnd_max = 0;
  std::uint64_t rnd_seed = 1;
};

/// Parameter-requirement bits reproducing paper Table II.
namespace requires_bit {
inline constexpr unsigned kP = 1u << 0;      // number of PEs
inline constexpr unsigned kN = 1u << 1;      // number of tasks
inline constexpr unsigned kR = 1u << 2;      // number of remaining tasks
inline constexpr unsigned kH = 1u << 3;      // scheduling overhead
inline constexpr unsigned kMu = 1u << 4;     // mean of task times
inline constexpr unsigned kSigma = 1u << 5;  // std deviation of task times
inline constexpr unsigned kFirst = 1u << 6;  // first chunk size
inline constexpr unsigned kLast = 1u << 7;   // last chunk size
inline constexpr unsigned kM = 1u << 8;      // remaining + in-execution tasks
}  // namespace requires_bit

/// Human-readable rendering of a requirement mask, e.g. "p,n,h,sigma".
[[nodiscard]] std::string requires_to_string(unsigned mask);

}  // namespace dls
