#pragma once

#include <cstddef>
#include <vector>

#include "dls/technique.hpp"

namespace dls {

/// One issued chunk in a synthetic scheduling trace.
struct ChunkRecord {
  std::size_t pe = 0;
  std::size_t size = 0;
};

/// Enumerate the full chunk sequence a technique produces when PEs
/// request work round-robin and every chunk completes before the next
/// request (the classic "chunk table" view used throughout the DLS
/// literature, and by this repo's tests to pin known sequences).
///
/// `task_time` is the assumed constant per-task execution time used to
/// synthesize completion feedback for the adaptive techniques.
[[nodiscard]] std::vector<ChunkRecord> chunk_sequence(Technique& technique,
                                                      double task_time = 1.0);

/// Convenience: just the sizes.
[[nodiscard]] std::vector<std::size_t> chunk_sizes(Technique& technique, double task_time = 1.0);

}  // namespace dls
