#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "dls/params.hpp"

namespace dls {

/// A chunk request arriving at the scheduler (master side of paper
/// Figure 1).  `pe` identifies the requesting processing element;
/// `now` is the virtual time of the request, used by the adaptive
/// techniques and available to any technique that models overhead.
struct Request {
  std::size_t pe = 0;
  double now = 0.0;
};

/// Completion report for a previously issued chunk.  The master learns
/// completion implicitly: a worker's next work request means its last
/// chunk finished.  Adaptive techniques (AWF*, AF) update their per-PE
/// execution-rate estimates from this; BOLD updates its count m of
/// remaining-plus-in-execution tasks (paper Table I).
struct ChunkFeedback {
  std::size_t pe = 0;
  std::size_t size = 0;
  double exec_time = 0.0;  ///< time the PE spent executing the chunk [s]
  double now = 0.0;
};

/// A dynamic loop scheduling technique: a stateful chunk-size calculator.
///
/// The driver (simulated master, Hagerup-style direct simulator, or an
/// OpenMP-like runtime) calls next_chunk() for every work request and
/// reports completions via on_chunk_complete().  The technique tracks
/// its own allocated/completed counts so that drivers cannot desynchronize
/// the r and m quantities of paper Table I.
class Technique {
 public:
  virtual ~Technique() = default;
  Technique(const Technique&) = delete;
  Technique& operator=(const Technique&) = delete;

  /// Size of the next chunk for the requesting PE; 0 when no tasks
  /// remain unscheduled.  Never exceeds the number of remaining tasks.
  [[nodiscard]] std::size_t next_chunk(const Request& request);

  /// Report that a chunk issued earlier has completed execution.
  void on_chunk_complete(const ChunkFeedback& feedback);

  /// Return `size` previously allocated (but never completed) tasks to
  /// the unscheduled pool -- the building block of fail-stop resilience:
  /// when a PE dies, the master reclaims its outstanding chunk and the
  /// technique re-schedules those tasks (r grows back by `size`).
  /// Techniques whose static plan is already exhausted (STAT, TSS's
  /// trapezoid) fall back to unit chunks for reclaimed work.
  void reclaim(std::size_t size);

  /// Notify a time-step boundary of a time-stepping application
  /// (AWF adapts its weights here; all other techniques ignore it).
  virtual void on_timestep_boundary() {}

  /// Begin a new time step of a time-stepping application: the n tasks
  /// are scheduled afresh, but adaptive state (AWF weights, AF
  /// estimators) persists -- this is precisely what distinguishes AWF
  /// from restarting WF every step.
  void start_new_timestep();

  /// Restart the technique for a new run with identical parameters.
  void reset();

  [[nodiscard]] virtual Kind kind() const = 0;
  [[nodiscard]] virtual std::string name() const;
  /// Parameter-requirement mask reproducing paper Table II.
  [[nodiscard]] virtual unsigned required_mask() const = 0;

  /// Scheduling-state accessors (paper Table I quantities).
  [[nodiscard]] std::size_t total_tasks() const { return params_.n; }
  [[nodiscard]] std::size_t remaining() const { return params_.n - allocated_; }      // r
  [[nodiscard]] std::size_t unfinished() const { return params_.n - completed_; }     // m
  [[nodiscard]] std::size_t allocated() const { return allocated_; }
  [[nodiscard]] std::size_t chunks_issued() const { return chunks_issued_; }
  [[nodiscard]] const Params& params() const { return params_; }

 protected:
  explicit Technique(const Params& params);

  /// Technique-specific chunk size before capping to the remaining
  /// count; must be >= 1.  `remaining` (r) and `unfinished` (m) are
  /// passed pre-computed for convenience.
  [[nodiscard]] virtual std::size_t compute_chunk(const Request& request, std::size_t remaining,
                                                  std::size_t unfinished) = 0;
  /// Adaptive-technique hook; counts are already updated when called.
  virtual void do_on_chunk_complete(const ChunkFeedback&) {}
  /// Reset technique-specific state.
  virtual void do_reset() {}
  /// Reset per-sweep state at a time-step boundary while keeping
  /// adaptive state.  Defaults to a full do_reset(), which is correct
  /// for every non-adaptive technique.
  virtual void do_start_timestep() { do_reset(); }

 private:
  Params params_;
  std::size_t allocated_ = 0;
  std::size_t completed_ = 0;
  std::size_t chunks_issued_ = 0;
};

/// Create a technique instance.  Validates parameters for the requested
/// kind (e.g. FAC requires mu > 0, WF requires positive weights) and
/// throws std::invalid_argument on violations.
[[nodiscard]] std::unique_ptr<Technique> make_technique(Kind kind, const Params& params);
[[nodiscard]] std::unique_ptr<Technique> make_technique(const std::string& name,
                                                        const Params& params);

}  // namespace dls
