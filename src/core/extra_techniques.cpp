// Post-paper techniques from the DLS follow-up literature (the LB4OMP
// family, Korndoerfer et al.): mFSC, TFSS and the RND stress baseline.
// These extend the verified set beyond the paper's Table II.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "techniques_internal.hpp"

namespace dls::detail {
namespace {

/// Number of chunks FAC2 issues for (n, p): batches of p chunks of
/// ceil(R/2p) until exhaustion.  Used by mFSC to match FAC2's
/// scheduling-overhead budget with a fixed chunk size.
std::size_t fac2_chunk_count(std::size_t n, std::size_t p) {
  std::size_t remaining = n;
  std::size_t count = 0;
  while (remaining > 0) {
    const std::size_t chunk = std::max<std::size_t>(1, (remaining + 2 * p - 1) / (2 * p));
    for (std::size_t i = 0; i < p && remaining > 0; ++i) {
      remaining -= std::min(chunk, remaining);
      ++count;
    }
  }
  return count;
}

/// mFSC -- modified fixed-size chunking: a fixed chunk size chosen so
/// that the total number of chunks (and hence the total scheduling
/// overhead) equals FAC2's, without needing the h and sigma inputs of
/// Kruskal-Weiss FSC.
class ModifiedFsc final : public Technique {
 public:
  explicit ModifiedFsc(const Params& params) : Technique(params) {
    const std::size_t chunks = fac2_chunk_count(params.n, params.p);
    k_ = std::max<std::size_t>(1, (params.n + chunks - 1) / chunks);
  }

  Kind kind() const override { return Kind::kMFSC; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kN;
  }

  [[nodiscard]] std::size_t chunk_size() const { return k_; }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t, std::size_t) override { return k_; }

 private:
  std::size_t k_ = 1;
};

/// TFSS -- trapezoid factoring self-scheduling: TSS's linear decrease
/// applied batch-wise; all p chunks of a batch share the mean of the
/// p trapezoid sizes the batch spans, stabilizing TSS's tail.
class TrapezoidFactoring final : public Technique {
 public:
  explicit TrapezoidFactoring(const Params& params) : Technique(params) {
    f_ = params.tss_first != 0
             ? params.tss_first
             : std::max<std::size_t>(1, (params.n + 2 * params.p - 1) / (2 * params.p));
    l_ = params.tss_last != 0 ? params.tss_last : 1;
    if (l_ > f_) {
      throw std::invalid_argument("TFSS: last chunk size l must not exceed first chunk size f");
    }
    const std::size_t planned = std::max<std::size_t>(1, (2 * params.n + f_ + l_ - 1) / (f_ + l_));
    delta_ = planned > 1 ? static_cast<double>(f_ - l_) / static_cast<double>(planned - 1) : 0.0;
  }

  Kind kind() const override { return Kind::kTFSS; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kN | kFirst | kLast;
  }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t, std::size_t) override {
    if (batch_left_ == 0) {
      // Mean of the p trapezoid sizes this batch covers:
      // f - delta*(i + (p-1)/2) for trapezoid index i.
      const double p = static_cast<double>(params().p);
      const double mid = static_cast<double>(trapezoid_index_) + (p - 1.0) / 2.0;
      const double size = static_cast<double>(f_) - delta_ * mid;
      batch_chunk_ = std::max<std::size_t>(
          l_, static_cast<std::size_t>(std::llround(std::max(size, 1.0))));
      batch_left_ = params().p;
      trapezoid_index_ += params().p;
    }
    --batch_left_;
    return batch_chunk_;
  }

  void do_reset() override {
    batch_left_ = 0;
    batch_chunk_ = 0;
    trapezoid_index_ = 0;
  }

 private:
  std::size_t f_ = 1;
  std::size_t l_ = 1;
  double delta_ = 0.0;
  std::size_t batch_left_ = 0;
  std::size_t batch_chunk_ = 0;
  std::size_t trapezoid_index_ = 0;
};

/// RND -- uniformly random chunk size in [rnd_min, rnd_max]: not a load
/// balancing technique but the stress/control baseline of the LB4OMP
/// study.  Deterministic given Params::rnd_seed (splitmix64 stream).
class RandomChunks final : public Technique {
 public:
  explicit RandomChunks(const Params& params) : Technique(params) {
    lo_ = std::max<std::size_t>(1, params.rnd_min);
    hi_ = params.rnd_max != 0
              ? params.rnd_max
              : std::max<std::size_t>(1, (params.n + params.p - 1) / params.p);
    if (lo_ > hi_) throw std::invalid_argument("RND: rnd_min must not exceed rnd_max");
    state_ = params.rnd_seed;
  }

  Kind kind() const override { return Kind::kRND; }
  unsigned required_mask() const override {
    using namespace requires_bit;
    return kP | kN;  // bounds default to [1, ceil(n/p)]
  }

 protected:
  std::size_t compute_chunk(const Request&, std::size_t, std::size_t) override {
    const std::size_t span = hi_ - lo_ + 1;
    return lo_ + static_cast<std::size_t>(next_u64() % span);
  }

  void do_reset() override { state_ = params().rnd_seed; }

 private:
  std::uint64_t next_u64() {
    state_ += 0x9E3779B97f4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::size_t lo_ = 1;
  std::size_t hi_ = 1;
  std::uint64_t state_ = 1;
};

}  // namespace

std::unique_ptr<Technique> make_mfsc(const Params& params) {
  return std::make_unique<ModifiedFsc>(params);
}
std::unique_ptr<Technique> make_tfss(const Params& params) {
  return std::make_unique<TrapezoidFactoring>(params);
}
std::unique_ptr<Technique> make_rnd(const Params& params) {
  return std::make_unique<RandomChunks>(params);
}

}  // namespace dls::detail
