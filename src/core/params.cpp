#include "dls/params.hpp"

#include <stdexcept>
#include <utility>

namespace dls {

std::string to_string(Kind kind) {
  switch (kind) {
    case Kind::kStatic: return "STAT";
    case Kind::kSS: return "SS";
    case Kind::kCSS: return "CSS";
    case Kind::kFSC: return "FSC";
    case Kind::kGSS: return "GSS";
    case Kind::kTSS: return "TSS";
    case Kind::kFAC: return "FAC";
    case Kind::kFAC2: return "FAC2";
    case Kind::kBOLD: return "BOLD";
    case Kind::kTAP: return "TAP";
    case Kind::kWF: return "WF";
    case Kind::kAWF: return "AWF";
    case Kind::kAWFB: return "AWF-B";
    case Kind::kAWFC: return "AWF-C";
    case Kind::kAWFD: return "AWF-D";
    case Kind::kAWFE: return "AWF-E";
    case Kind::kAF: return "AF";
    case Kind::kMFSC: return "mFSC";
    case Kind::kTFSS: return "TFSS";
    case Kind::kRND: return "RND";
  }
  throw std::invalid_argument("to_string: bad Kind");
}

Kind kind_from_string(const std::string& name) {
  for (Kind k : all_kinds()) {
    if (to_string(k) == name) return k;
  }
  throw std::invalid_argument("unknown DLS technique: " + name);
}

const std::vector<Kind>& all_kinds() {
  static const std::vector<Kind> kinds = {
      Kind::kStatic, Kind::kSS,   Kind::kCSS,  Kind::kFSC,  Kind::kGSS,
      Kind::kTSS,    Kind::kFAC,  Kind::kFAC2, Kind::kBOLD, Kind::kTAP,
      Kind::kWF,     Kind::kAWF,  Kind::kAWFB, Kind::kAWFC, Kind::kAWFD,
      Kind::kAWFE,   Kind::kAF,   Kind::kMFSC, Kind::kTFSS, Kind::kRND};
  return kinds;
}

const std::vector<Kind>& bold_publication_kinds() {
  static const std::vector<Kind> kinds = {Kind::kStatic, Kind::kSS,  Kind::kFSC,
                                          Kind::kGSS,    Kind::kTSS, Kind::kFAC,
                                          Kind::kFAC2,   Kind::kBOLD};
  return kinds;
}

std::string requires_to_string(unsigned mask) {
  using namespace requires_bit;
  static const std::pair<unsigned, const char*> names[] = {
      {kP, "p"},     {kN, "n"},         {kR, "r"},     {kH, "h"},   {kMu, "mu"},
      {kSigma, "sigma"}, {kFirst, "f"}, {kLast, "l"},  {kM, "m"}};
  std::string out;
  for (const auto& [bit, label] : names) {
    if (mask & bit) {
      if (!out.empty()) out += ",";
      out += label;
    }
  }
  return out.empty() ? "-" : out;
}

}  // namespace dls
