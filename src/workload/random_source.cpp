#include "workload/random_source.hpp"

namespace workload {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

XoshiroSource::XoshiroSource(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // A state of all zeros would be a fixed point; splitmix64 cannot
  // produce four zero words from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::unique_ptr<RandomSource> XoshiroSource::split(std::uint64_t index) const {
  // Derive an independent stream by hashing (seed, index); splitmix64 in
  // the constructor decorrelates nearby indices.
  return std::make_unique<XoshiroSource>(seed_ ^ (0x9E3779B97f4A7C15ull * (index + 1)));
}

}  // namespace workload
