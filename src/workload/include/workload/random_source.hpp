#pragma once

#include <cstdint>
#include <memory>

#include "workload/rand48.hpp"

namespace workload {

/// Uniform random source abstraction.
///
/// Two implementations are provided: Rand48Source replicates the
/// generator used by the BOLD publication's simulator; XoshiroSource is
/// a high-quality modern generator used everywhere faithfulness to the
/// 1997 experiments is not required.  All distribution code draws
/// through this interface so an experiment can switch generator without
/// touching its workload definition.
class RandomSource {
 public:
  virtual ~RandomSource() = default;
  RandomSource() = default;
  RandomSource(const RandomSource&) = delete;
  RandomSource& operator=(const RandomSource&) = delete;

  /// Uniformly distributed double in [0, 1).
  virtual double uniform01() = 0;
  /// Uniformly distributed 64-bit value.
  virtual std::uint64_t next_u64() = 0;
  /// Independent stream for run `index`; deterministic in (seed, index).
  [[nodiscard]] virtual std::unique_ptr<RandomSource> split(std::uint64_t index) const = 0;
};

/// RandomSource view over the POSIX rand48 recurrence.
class Rand48Source final : public RandomSource {
 public:
  explicit Rand48Source(std::uint32_t seed) : gen_(seed), seed_(seed) {}

  double uniform01() override { return gen_.drand48(); }
  std::uint64_t next_u64() override {
    // Two 31-bit draws + one 2-bit draw would be wasteful; compose two
    // mrand48 words, which exercise the full 32 high bits of the state.
    const auto hi = static_cast<std::uint32_t>(gen_.mrand48());
    const auto lo = static_cast<std::uint32_t>(gen_.mrand48());
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
  }
  [[nodiscard]] std::unique_ptr<RandomSource> split(std::uint64_t index) const override {
    return std::make_unique<Rand48Source>(
        static_cast<std::uint32_t>(seed_ + 0x9E3779B9u * (index + 1)));
  }

 private:
  Rand48 gen_;
  std::uint32_t seed_;
};

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64.
class XoshiroSource final : public RandomSource {
 public:
  explicit XoshiroSource(std::uint64_t seed);

  double uniform01() override {
    // 53 high-quality bits -> [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1p-53;
  }
  // Inline: one virtual dispatch per draw is unavoidable through the
  // interface, but the xoshiro step itself must not cost a second call
  // (the per-task draw is on the simulation hot path).
  std::uint64_t next_u64() override {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }
  [[nodiscard]] std::unique_ptr<RandomSource> split(std::uint64_t index) const override;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace workload
