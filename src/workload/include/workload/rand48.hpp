#pragma once

#include <cstdint>

namespace workload {

/// Exact reimplementation of the POSIX rand48 generator family
/// (drand48/erand48/lrand48/nrand48/mrand48/jrand48).
///
/// The BOLD publication (Hagerup 1997) generated its task execution
/// times with erand48/nrand48; reimplementing the 48-bit linear
/// congruential generator from its published constants makes our
/// replication of that simulator bit-reproducible on any platform,
/// independent of the host libc.
///
/// Recurrence: X_{k+1} = (a * X_k + c) mod 2^48,
/// with a = 0x5DEECE66D and c = 0xB.
class Rand48 {
 public:
  static constexpr std::uint64_t kA = 0x5DEECE66Dull;
  static constexpr std::uint64_t kC = 0xBull;
  static constexpr std::uint64_t kMask48 = (1ull << 48) - 1;

  /// Equivalent of srand48(seed): the high 32 bits of X are set to the
  /// seed and the low 16 bits to the constant 0x330E.
  explicit Rand48(std::uint32_t seed = 0) { srand48(seed); }

  void srand48(std::uint32_t seed) {
    state_ = ((static_cast<std::uint64_t>(seed) << 16) | 0x330Eull) & kMask48;
  }

  /// Set the raw 48-bit state (equivalent of seed48 with a full value).
  void seed48(std::uint64_t state) { state_ = state & kMask48; }
  [[nodiscard]] std::uint64_t state() const { return state_; }

  /// drand48/erand48: uniformly distributed double in [0, 1).
  double drand48() { return static_cast<double>(step()) * 0x1p-48; }

  /// lrand48/nrand48: uniformly distributed integer in [0, 2^31).
  std::uint32_t lrand48() { return static_cast<std::uint32_t>(step() >> 17); }

  /// mrand48/jrand48: uniformly distributed integer in [-2^31, 2^31).
  std::int32_t mrand48() { return static_cast<std::int32_t>(step() >> 16); }

 private:
  std::uint64_t step() {
    state_ = (kA * state_ + kC) & kMask48;
    return state_;
  }

  std::uint64_t state_ = 0x330Eull;
};

}  // namespace workload
