#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "workload/random_source.hpp"

namespace workload {

/// Generator of task (loop-iteration) execution times, the central
/// application input of a DLS simulation (paper Figure 2: "Task
/// Execution Times" + "Distribution").
///
/// Implementations cover both kinds of workloads used by the reproduced
/// publications: position-dependent deterministic patterns (constant,
/// increasing, decreasing — TSS publication) and i.i.d. draws from a
/// probability distribution (exponential — BOLD publication; plus the
/// wider family used in the robustness/resilience follow-up studies).
class TaskTimeGenerator {
 public:
  virtual ~TaskTimeGenerator() = default;
  TaskTimeGenerator() = default;
  TaskTimeGenerator(const TaskTimeGenerator&) = delete;
  TaskTimeGenerator& operator=(const TaskTimeGenerator&) = delete;

  /// Execution time (seconds) of task `index` out of `n`.
  [[nodiscard]] virtual double sample(std::size_t index, std::size_t n, RandomSource& rng) const = 0;

  /// Nominal mean of the task times (the µ of paper Table I).
  [[nodiscard]] virtual double mean() const = 0;
  /// Nominal standard deviation (the σ of paper Table I; the paper's
  /// Table I calls it "variance" but uses it in units of time).
  [[nodiscard]] virtual double stddev() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Canonical `from_spec` text that reconstructs this generator, e.g.
  /// "exponential:1".  Numbers use shortest round-trip formatting, so
  /// from_spec(spec()) samples identically.  Generators with no spec
  /// form (trace) fall back to name(), which from_spec rejects.
  [[nodiscard]] virtual std::string spec() const { return name(); }

  /// Materialize all n task times (the per-run workload vector).
  [[nodiscard]] std::vector<double> generate(std::size_t n, RandomSource& rng) const;

  /// Fill `out` (resized to n) with the same values generate() would
  /// produce, reusing out's capacity.  This is the simulation hot path:
  /// a time-stepping run regenerates the workload every step, and the
  /// master must not allocate for it in steady state.
  void generate_into(std::vector<double>& out, std::size_t n, RandomSource& rng) const;

 protected:
  /// Bulk-fill hook: out[i] = sample(i, n, rng) for i in [0, n).
  /// Hot generators override this with a devirtualized tight loop; the
  /// values must be bit-identical to per-sample generation.
  virtual void do_generate_into(double* out, std::size_t n, RandomSource& rng) const;
};

/// Every task takes exactly `value` seconds (TSS experiments 1 and 2).
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> constant(double value);

/// Uniform in [lo, hi).
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> uniform(double lo, double hi);

/// Exponential with mean mu (BOLD experiments: mu = 1 s, sigma = 1 s).
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> exponential(double mu);

/// Normal(mu, sigma) truncated below at `floor` (task times must stay
/// positive; the floor is re-sampled, not clamped, to avoid an atom).
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> normal(double mu, double sigma,
                                                        double floor = 1e-9);

/// Gamma with shape k and scale theta (mean k*theta).
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> gamma(double shape, double scale);

/// Lognormal such that the *resulting* distribution has the given mean
/// and standard deviation.
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> lognormal(double mean, double stddev);

/// Weibull with shape k and scale lambda.
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> weibull(double shape, double scale);

/// Mixture: with probability `weight_hi` a task costs `hi`, else `lo`
/// (models the bimodal kernels of irregular scientific codes).
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> bimodal(double lo, double hi, double weight_hi);

/// Deterministic linear ramp from `first` (task 0) to `last` (task n-1):
/// the TSS publication's "increasing"/"decreasing" workloads.
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> linear_ramp(double first, double last);

/// Replay a recorded trace of task times (paper Section III: "a trace
/// file or similar information describing the behavior of the measured
/// application").  Index i uses trace[i % trace.size()].
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> trace(std::vector<double> values);

/// Build a generator from a textual spec, e.g. "constant:0.00011",
/// "exponential:1.0", "uniform:0.5,1.5", "normal:1.0,0.2",
/// "gamma:2.0,0.5", "ramp:2.0,0.1", "bimodal:0.1,1.0,0.25".
/// Throws std::invalid_argument on malformed specs.
[[nodiscard]] std::unique_ptr<TaskTimeGenerator> from_spec(const std::string& spec);

}  // namespace workload
