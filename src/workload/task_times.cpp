#include "workload/task_times.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/table.hpp"

namespace workload {

std::vector<double> TaskTimeGenerator::generate(std::size_t n, RandomSource& rng) const {
  std::vector<double> out;
  generate_into(out, n, rng);
  return out;
}

void TaskTimeGenerator::generate_into(std::vector<double>& out, std::size_t n,
                                      RandomSource& rng) const {
  out.resize(n);
  if (n > 0) do_generate_into(out.data(), n, rng);
}

void TaskTimeGenerator::do_generate_into(double* out, std::size_t n, RandomSource& rng) const {
  for (std::size_t i = 0; i < n; ++i) out[i] = sample(i, n, rng);
}

namespace {

void require_positive(double v, const char* what) {
  if (!(v > 0.0)) throw std::invalid_argument(std::string(what) + " must be > 0");
}

class Constant final : public TaskTimeGenerator {
 public:
  explicit Constant(double value) : value_(value) { require_positive(value, "constant value"); }
  double sample(std::size_t, std::size_t, RandomSource&) const override { return value_; }
  void do_generate_into(double* out, std::size_t n, RandomSource&) const override {
    std::fill(out, out + n, value_);
  }
  double mean() const override { return value_; }
  double stddev() const override { return 0.0; }
  std::string name() const override { return "constant(" + std::to_string(value_) + ")"; }
  std::string spec() const override { return "constant:" + support::fmt_shortest(value_); }

 private:
  double value_;
};

class Uniform final : public TaskTimeGenerator {
 public:
  Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
    if (!(hi > lo) || !(lo >= 0.0)) throw std::invalid_argument("uniform: need 0 <= lo < hi");
  }
  double sample(std::size_t, std::size_t, RandomSource& rng) const override {
    return lo_ + (hi_ - lo_) * rng.uniform01();
  }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double stddev() const override { return (hi_ - lo_) / std::sqrt(12.0); }
  std::string name() const override {
    return "uniform(" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
  }
  std::string spec() const override {
    return "uniform:" + support::fmt_shortest(lo_) + "," + support::fmt_shortest(hi_);
  }

 private:
  double lo_, hi_;
};

class Exponential final : public TaskTimeGenerator {
 public:
  explicit Exponential(double mu) : mu_(mu) { require_positive(mu, "exponential mean"); }
  double sample(std::size_t, std::size_t, RandomSource& rng) const override {
    // Inverse CDF; 1-u in (0,1] so log() never sees zero.
    return -mu_ * std::log(1.0 - rng.uniform01());
  }
  void do_generate_into(double* out, std::size_t n, RandomSource& rng) const override {
    // Same inverse-CDF arithmetic as sample(); only the per-element
    // virtual dispatch is hoisted out of the loop.
    const double mu = mu_;
    for (std::size_t i = 0; i < n; ++i) out[i] = -mu * std::log(1.0 - rng.uniform01());
  }
  double mean() const override { return mu_; }
  double stddev() const override { return mu_; }
  std::string name() const override { return "exponential(" + std::to_string(mu_) + ")"; }
  std::string spec() const override { return "exponential:" + support::fmt_shortest(mu_); }

 private:
  double mu_;
};

double sample_standard_normal(RandomSource& rng) {
  // Box-Muller; consumes two uniforms per call.  The pair's second
  // value is deliberately not cached: keeping the generator stateless
  // preserves the "same seed, same workload" contract under splitting.
  const double u1 = 1.0 - rng.uniform01();  // (0,1]
  const double u2 = rng.uniform01();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

class Normal final : public TaskTimeGenerator {
 public:
  Normal(double mu, double sigma, double floor) : mu_(mu), sigma_(sigma), floor_(floor) {
    require_positive(mu, "normal mean");
    if (sigma < 0.0) throw std::invalid_argument("normal: sigma must be >= 0");
  }
  double sample(std::size_t, std::size_t, RandomSource& rng) const override {
    for (;;) {
      const double v = mu_ + sigma_ * sample_standard_normal(rng);
      if (v >= floor_) return v;
    }
  }
  double mean() const override { return mu_; }
  double stddev() const override { return sigma_; }
  std::string name() const override {
    return "normal(" + std::to_string(mu_) + "," + std::to_string(sigma_) + ")";
  }
  std::string spec() const override {
    return "normal:" + support::fmt_shortest(mu_) + "," + support::fmt_shortest(sigma_);
  }

 private:
  double mu_, sigma_, floor_;
};

class Gamma final : public TaskTimeGenerator {
 public:
  Gamma(double shape, double scale) : shape_(shape), scale_(scale) {
    require_positive(shape, "gamma shape");
    require_positive(scale, "gamma scale");
  }
  double sample(std::size_t i, std::size_t n, RandomSource& rng) const override {
    return scale_ * sample_standard(shape_, i, n, rng);
  }
  double mean() const override { return shape_ * scale_; }
  double stddev() const override { return std::sqrt(shape_) * scale_; }
  std::string name() const override {
    return "gamma(" + std::to_string(shape_) + "," + std::to_string(scale_) + ")";
  }
  std::string spec() const override {
    return "gamma:" + support::fmt_shortest(shape_) + "," + support::fmt_shortest(scale_);
  }

 private:
  // Marsaglia-Tsang squeeze method; shape < 1 boosted via the
  // u^(1/shape) transformation.
  static double sample_standard(double shape, std::size_t i, std::size_t n, RandomSource& rng) {
    if (shape < 1.0) {
      const double u = 1.0 - rng.uniform01();
      return sample_standard(shape + 1.0, i, n, rng) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = sample_standard_normal(rng);
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = 1.0 - rng.uniform01();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
    }
  }

  double shape_, scale_;
};

class Lognormal final : public TaskTimeGenerator {
 public:
  Lognormal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
    require_positive(mean, "lognormal mean");
    require_positive(stddev, "lognormal stddev");
    const double cv2 = (stddev / mean) * (stddev / mean);
    sigma_log_ = std::sqrt(std::log1p(cv2));
    mu_log_ = std::log(mean) - 0.5 * sigma_log_ * sigma_log_;
  }
  double sample(std::size_t, std::size_t, RandomSource& rng) const override {
    return std::exp(mu_log_ + sigma_log_ * sample_standard_normal(rng));
  }
  double mean() const override { return mean_; }
  double stddev() const override { return stddev_; }
  std::string name() const override {
    return "lognormal(" + std::to_string(mean_) + "," + std::to_string(stddev_) + ")";
  }
  std::string spec() const override {
    return "lognormal:" + support::fmt_shortest(mean_) + "," + support::fmt_shortest(stddev_);
  }

 private:
  double mean_, stddev_, mu_log_{}, sigma_log_{};
};

class Weibull final : public TaskTimeGenerator {
 public:
  Weibull(double shape, double scale) : shape_(shape), scale_(scale) {
    require_positive(shape, "weibull shape");
    require_positive(scale, "weibull scale");
    mean_ = scale_ * std::tgamma(1.0 + 1.0 / shape_);
    const double m2 = scale_ * scale_ * std::tgamma(1.0 + 2.0 / shape_);
    stddev_ = std::sqrt(std::max(0.0, m2 - mean_ * mean_));
  }
  double sample(std::size_t, std::size_t, RandomSource& rng) const override {
    const double u = 1.0 - rng.uniform01();  // (0,1]
    return scale_ * std::pow(-std::log(u), 1.0 / shape_);
  }
  double mean() const override { return mean_; }
  double stddev() const override { return stddev_; }
  std::string name() const override {
    return "weibull(" + std::to_string(shape_) + "," + std::to_string(scale_) + ")";
  }
  std::string spec() const override {
    return "weibull:" + support::fmt_shortest(shape_) + "," + support::fmt_shortest(scale_);
  }

 private:
  double shape_, scale_, mean_{}, stddev_{};
};

class Bimodal final : public TaskTimeGenerator {
 public:
  Bimodal(double lo, double hi, double weight_hi) : lo_(lo), hi_(hi), w_(weight_hi) {
    require_positive(lo, "bimodal lo");
    require_positive(hi, "bimodal hi");
    if (!(w_ >= 0.0 && w_ <= 1.0)) throw std::invalid_argument("bimodal: weight in [0,1]");
  }
  double sample(std::size_t, std::size_t, RandomSource& rng) const override {
    return rng.uniform01() < w_ ? hi_ : lo_;
  }
  double mean() const override { return (1.0 - w_) * lo_ + w_ * hi_; }
  double stddev() const override {
    const double m = mean();
    const double v = (1.0 - w_) * (lo_ - m) * (lo_ - m) + w_ * (hi_ - m) * (hi_ - m);
    return std::sqrt(v);
  }
  std::string name() const override {
    return "bimodal(" + std::to_string(lo_) + "," + std::to_string(hi_) + "," +
           std::to_string(w_) + ")";
  }
  std::string spec() const override {
    return "bimodal:" + support::fmt_shortest(lo_) + "," + support::fmt_shortest(hi_) + "," + support::fmt_shortest(w_);
  }

 private:
  double lo_, hi_, w_;
};

class LinearRamp final : public TaskTimeGenerator {
 public:
  LinearRamp(double first, double last) : first_(first), last_(last) {
    require_positive(first, "ramp first");
    require_positive(last, "ramp last");
  }
  double sample(std::size_t i, std::size_t n, RandomSource&) const override {
    if (n <= 1) return first_;
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    return first_ + (last_ - first_) * t;
  }
  double mean() const override { return 0.5 * (first_ + last_); }
  double stddev() const override {
    // Variance of a uniform grid over [first,last] tends to the
    // continuous-uniform variance for large n.
    return std::abs(last_ - first_) / std::sqrt(12.0);
  }
  std::string name() const override {
    return "ramp(" + std::to_string(first_) + "->" + std::to_string(last_) + ")";
  }
  std::string spec() const override {
    return "ramp:" + support::fmt_shortest(first_) + "," + support::fmt_shortest(last_);
  }

 private:
  double first_, last_;
};

class Trace final : public TaskTimeGenerator {
 public:
  explicit Trace(std::vector<double> values) : values_(std::move(values)) {
    if (values_.empty()) throw std::invalid_argument("trace: empty");
    double sum = 0.0, sq = 0.0;
    for (double v : values_) {
      require_positive(v, "trace value");
      sum += v;
      sq += v * v;
    }
    mean_ = sum / static_cast<double>(values_.size());
    stddev_ = std::sqrt(std::max(0.0, sq / static_cast<double>(values_.size()) - mean_ * mean_));
  }
  double sample(std::size_t i, std::size_t, RandomSource&) const override {
    return values_[i % values_.size()];
  }
  double mean() const override { return mean_; }
  double stddev() const override { return stddev_; }
  std::string name() const override {
    return "trace(" + std::to_string(values_.size()) + " samples)";
  }

 private:
  std::vector<double> values_;
  double mean_{}, stddev_{};
};

std::vector<double> parse_args(const std::string& s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    std::size_t pos = 0;
    out.push_back(std::stod(item, &pos));
    if (pos != item.size()) throw std::invalid_argument("bad number in spec: " + item);
  }
  return out;
}

}  // namespace

std::unique_ptr<TaskTimeGenerator> constant(double value) {
  return std::make_unique<Constant>(value);
}
std::unique_ptr<TaskTimeGenerator> uniform(double lo, double hi) {
  return std::make_unique<Uniform>(lo, hi);
}
std::unique_ptr<TaskTimeGenerator> exponential(double mu) {
  return std::make_unique<Exponential>(mu);
}
std::unique_ptr<TaskTimeGenerator> normal(double mu, double sigma, double floor) {
  return std::make_unique<Normal>(mu, sigma, floor);
}
std::unique_ptr<TaskTimeGenerator> gamma(double shape, double scale) {
  return std::make_unique<Gamma>(shape, scale);
}
std::unique_ptr<TaskTimeGenerator> lognormal(double mean, double stddev) {
  return std::make_unique<Lognormal>(mean, stddev);
}
std::unique_ptr<TaskTimeGenerator> weibull(double shape, double scale) {
  return std::make_unique<Weibull>(shape, scale);
}
std::unique_ptr<TaskTimeGenerator> bimodal(double lo, double hi, double weight_hi) {
  return std::make_unique<Bimodal>(lo, hi, weight_hi);
}
std::unique_ptr<TaskTimeGenerator> linear_ramp(double first, double last) {
  return std::make_unique<LinearRamp>(first, last);
}
std::unique_ptr<TaskTimeGenerator> trace(std::vector<double> values) {
  return std::make_unique<Trace>(std::move(values));
}

std::unique_ptr<TaskTimeGenerator> from_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::vector<double> a =
      colon == std::string::npos ? std::vector<double>{} : parse_args(spec.substr(colon + 1));
  auto need = [&](std::size_t k) {
    if (a.size() != k) {
      throw std::invalid_argument("spec '" + spec + "' needs " + std::to_string(k) + " args");
    }
  };
  if (kind == "constant") { need(1); return constant(a[0]); }
  if (kind == "uniform") { need(2); return uniform(a[0], a[1]); }
  if (kind == "exponential") { need(1); return exponential(a[0]); }
  if (kind == "normal") { need(2); return normal(a[0], a[1]); }
  if (kind == "gamma") { need(2); return gamma(a[0], a[1]); }
  if (kind == "lognormal") { need(2); return lognormal(a[0], a[1]); }
  if (kind == "weibull") { need(2); return weibull(a[0], a[1]); }
  if (kind == "bimodal") { need(3); return bimodal(a[0], a[1], a[2]); }
  if (kind == "ramp") { need(2); return linear_ramp(a[0], a[1]); }
  throw std::invalid_argument("unknown workload spec kind: " + kind);
}

}  // namespace workload
