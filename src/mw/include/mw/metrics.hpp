#pragma once

#include "mw/config.hpp"
#include "mw/result.hpp"

namespace mw {

/// The measured values of the reproduced experiments (paper Figure 2:
/// "Execution Information: Measured Value(s)").
struct Metrics {
  /// Average wasted time of the run (paper Sections III-B/IV-B):
  /// the wasted time of a worker is the overall simulation time minus
  /// its computation time; the average over workers is taken, and --
  /// under OverheadMode::kAnalytic -- h times the number of scheduling
  /// operations is added (divided across workers, matching the
  /// per-worker overhead accounting of the BOLD publication).
  double avg_wasted_time = 0.0;
  /// Speedup r = L*P/(X+O+W) of the TSS publication, which with
  /// Sum(X+O+W) = P*makespan reduces to total work / makespan.
  double speedup = 0.0;
  /// Degree of scheduling overhead Theta = O*P/(X+O+W): the average
  /// number of PEs wasted in the scheduling state.
  double overhead_degree = 0.0;
  /// Degree of load imbalancing Lambda = W*P/(X+O+W): the average
  /// number of PEs wasted in the waiting state.
  double imbalance_degree = 0.0;
  /// Makespan (total simulated time) [s].
  double makespan = 0.0;
  /// Number of scheduling operations (chunks).
  std::size_t chunks = 0;
  /// Coefficient of variation of the per-worker computation times
  /// (population stddev / mean), the load-imbalance measure of the
  /// verification follow-up studies (arXiv:1804.11115): 0 = perfectly
  /// even work, larger = more imbalance.  0 when no work was done.
  double cov = 0.0;
  /// Slowness p * makespan / total nominal work: the factor by which
  /// the run is slower than perfect sharing of the nominal work over p
  /// PEs (>= 1 up to rounding; the inverse of parallel efficiency, and
  /// identically p / speedup).
  double slowness = 0.0;
};

/// Derive the paper's metrics from a run result.
///
/// The per-chunk scheduling cost attributed to a worker (for the
/// Tzen-Ni Theta metric) is the request/reply round-trip cost plus, in
/// simulated-overhead mode, the master's h; waiting time is what
/// remains after computation and scheduling.
[[nodiscard]] Metrics compute_metrics(const RunResult& result, const Config& config);

}  // namespace mw
