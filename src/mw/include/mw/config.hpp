#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dls/params.hpp"
#include "simx/platform.hpp"
#include "workload/task_times.hpp"

namespace mw {

/// How the scheduling overhead h is charged (paper Section III-B).
enum class OverheadMode {
  /// The BOLD publication's accounting, replicated by the paper: the
  /// simulation itself runs with free scheduling, and h multiplied by
  /// the number of scheduling operations is added to the wasted time
  /// afterwards ("the scheduling overhead h is added for each
  /// scheduling operation directly").
  kAnalytic,
  /// The master's CPU is occupied for h seconds per scheduling
  /// operation inside the simulation, so overhead delays workers and
  /// serializes on the master.  Used by the ablation study.
  kSimulated,
};

/// Complete description of one master-worker scheduling simulation:
/// the "Application Information", "System Information" and "Execution
/// Information" boxes of paper Figure 2.
struct Config {
  // --- application information ---
  dls::Kind technique = dls::Kind::kSS;
  /// Table I parameters; params.p is forced to `workers` and params.n
  /// to `tasks` by run_simulation.
  dls::Params params;
  std::size_t tasks = 0;
  /// Task execution time generator (shared, stateless w.r.t. sampling).
  std::shared_ptr<const workload::TaskTimeGenerator> workload;
  /// Number of time steps of a time-stepping application; the n tasks
  /// are re-scheduled every step with freshly drawn execution times.
  std::size_t timesteps = 1;

  // --- system information ---
  std::size_t workers = 1;
  /// Reference PE speed [flops/s]; nominal task seconds are converted
  /// to flops against this speed.
  double host_speed = 1e9;
  /// Per-worker relative speed factors (empty = homogeneous).  Worker i
  /// runs at host_speed * factor[i]; a factor < 1 models a slower PE.
  std::vector<double> worker_speed_factors;
  /// Per-worker piecewise speed profiles (empty = constant speeds).
  /// Profile speeds are absolute flops/s and override the factors; a
  /// zero-speed segment models the perturbations and failures of the
  /// robustness/resilience studies the paper builds on.
  std::vector<simx::SpeedProfile> worker_speed_profiles;
  /// Fail-stop times per worker (empty = no failures; use
  /// `infinity` for survivors).  A worker that reaches its failure time
  /// announces the failure on its next chunk (in-progress work is
  /// lost); the master reclaims the outstanding tasks and re-schedules
  /// them on the surviving workers -- the resilience scenario of the
  /// studies the paper cites.  All workers failing with work left is an
  /// error.
  std::vector<double> worker_failure_times;
  double bandwidth = 1e21;   ///< bytes/s ("very high": null network)
  double latency = 1e-12;    ///< s       ("very low":  null network)
  std::size_t request_bytes = 64;
  std::size_t reply_bytes = 64;

  // --- execution information ---
  OverheadMode overhead_mode = OverheadMode::kAnalytic;
  std::uint64_t seed = 42;
  /// Draw task times with the replicated POSIX rand48 generator instead
  /// of xoshiro256** (faithful to the BOLD publication's erand48).
  bool use_rand48 = false;
  /// Record the full per-chunk log (pe, size, time) in the result.
  bool record_chunk_log = false;
};

}  // namespace mw
