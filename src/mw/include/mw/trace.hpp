#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mw/result.hpp"

namespace mw {

/// Export the chunk log as CSV (`pe,first,size,issued_at`) for external
/// plotting -- the "raw data of the experiments" artifact the paper
/// publishes alongside its figures.  Requires Config::record_chunk_log.
void write_chunk_csv(const RunResult& result, std::ostream& out);

/// Per-worker utilization derived from the chunk log: the fraction of
/// the makespan each worker spent executing tasks, plus the per-worker
/// chunk intervals.
struct WorkerUtilization {
  std::size_t pe = 0;
  double busy_fraction = 0.0;
  std::size_t chunks = 0;
  std::size_t tasks = 0;
};
[[nodiscard]] std::vector<WorkerUtilization> utilization(const RunResult& result);

/// Render an ASCII Gantt chart of the run from the chunk log: one row
/// per worker, time binned into `width` columns; a column is drawn
/// filled ('#') when the worker was executing a chunk for the majority
/// of that bin, '.' otherwise.  Chunk execution intervals are
/// reconstructed from consecutive issue times per worker under the
/// analytic (null network) model, where a worker computes from one
/// chunk issue to the next request.
[[nodiscard]] std::string ascii_gantt(const RunResult& result, std::size_t width = 80);

}  // namespace mw
