#pragma once

#include <cstddef>
#include <vector>

namespace mw {

/// Per-worker outcome of one simulated run.
struct WorkerStats {
  double compute_time = 0.0;  ///< virtual seconds spent executing tasks
  double wait_time = 0.0;     ///< virtual seconds blocked waiting for work
  double comm_time = 0.0;     ///< virtual seconds in blocking sends
  std::size_t tasks = 0;      ///< tasks COMPLETED by this worker
  std::size_t chunks = 0;
  bool failed = false;        ///< worker hit its fail-stop time
};

/// One entry of the optional chunk log.
struct ChunkLogEntry {
  std::size_t pe = 0;
  std::size_t first = 0;
  std::size_t size = 0;
  double issued_at = 0.0;
  /// Aggregate nominal execution time served with the chunk [s], as
  /// computed by the master's prefix-sum index over the task times.
  double work_seconds = 0.0;
};

/// One contiguous sub-range of a served chunk (optional range log).  A
/// chunk normally spans a single range; it spans several only when the
/// free-list is fragmented after a worker failure.  `chunk` indexes
/// into RunResult::chunk_log.
struct ServedRangeEntry {
  std::size_t chunk = 0;
  std::size_t first = 0;
  std::size_t count = 0;
};

/// Outcome of one master-worker simulation run.
struct RunResult {
  double makespan = 0.0;            ///< final virtual time
  double total_nominal_work = 0.0;  ///< sum of all task times [s]
  std::size_t chunk_count = 0;      ///< number of scheduling operations
  double master_busy_time = 0.0;    ///< simulated overhead time at the master
  std::size_t tasks_reclaimed = 0;  ///< tasks re-scheduled after worker failures
  std::vector<WorkerStats> workers;
  std::vector<ChunkLogEntry> chunk_log;      ///< filled if Config::record_chunk_log
  std::vector<ServedRangeEntry> range_log;   ///< filled if Config::record_chunk_log
};

}  // namespace mw
