#pragma once

#include <memory>

#include "mw/config.hpp"
#include "mw/result.hpp"

namespace mw {

/// Reusable scratch state for run_simulation.
///
/// Holds the simulation engine (platform, event-heap storage), the
/// workload and prefix-sum buffers, and every bookkeeping vector of the
/// serve loop.  When consecutive runs share the platform shape
/// (workers, speeds, network parameters), the engine and its platform
/// are reused instead of rebuilt, and after the first run the serve
/// loop reaches a steady state with no heap allocation per chunk.
///
/// Not thread-safe: use one RunContext per thread (the exec layer's
/// mw backend holds one per pooled instance).
class RunContext {
 public:
  RunContext();
  ~RunContext();
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Opaque implementation (defined in simulation.cpp).
  struct Impl;

 private:
  friend RunResult run_simulation(const Config& config, RunContext& context);
  std::unique_ptr<Impl> impl_;
};

/// Execute one master-worker scheduling simulation (paper Figure 1):
///
///   * a star platform is built from the Config's system information;
///   * one master actor and `workers` worker actors are spawned;
///   * idle workers send work-request messages; the master computes the
///     next chunk size with the configured DLS technique and replies
///     with the chunk's aggregate nominal execution time;
///   * on exhaustion the master sends finalization messages and the
///     simulation ends.
///
/// Deterministic: the same Config (including seed) always produces the
/// same result, with or without a reused RunContext.  Throws on invalid
/// configurations.
[[nodiscard]] RunResult run_simulation(const Config& config);

/// Same, but reusing `context`'s engine and buffers across calls --
/// the fast path for parameter sweeps (see exec::BatchRunner).
RunResult run_simulation(const Config& config, RunContext& context);

}  // namespace mw
