#pragma once

#include "mw/config.hpp"
#include "mw/result.hpp"

namespace mw {

/// Execute one master-worker scheduling simulation (paper Figure 1):
///
///   * a star platform is built from the Config's system information;
///   * one master actor and `workers` worker actors are spawned;
///   * idle workers send work-request messages; the master computes the
///     next chunk size with the configured DLS technique and replies
///     with the chunk's aggregate nominal execution time;
///   * on exhaustion the master sends finalization messages and the
///     simulation ends.
///
/// Deterministic: the same Config (including seed) always produces the
/// same result.  Throws on invalid configurations.
[[nodiscard]] RunResult run_simulation(const Config& config);

}  // namespace mw
