#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mw/config.hpp"
#include "stats/summary.hpp"

namespace mw {

/// One configuration of a batch: `replicas` independent simulation runs
/// of `config`, where replica r runs with seed
/// `config.seed + seed_stride * r`.  This is the repetition dimension
/// of every reproduced experiment (e.g. 1000 runs per cell in the BOLD
/// study, paper Section III-B).
struct BatchJob {
  Config config;
  std::size_t replicas = 1;
  std::uint64_t seed_stride = 1;
};

/// The splitmix64 output function (Steele/Lea/Flood mix of a
/// golden-ratio-incremented counter).  A bijective avalanche mix: every
/// input bit affects every output bit.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Decorrelated per-cell base seed for cell `cell_index` of a grid
/// whose experiment declares `base_seed`: the cell_index-th output of a
/// splitmix64 stream seeded with base_seed.
///
/// Grid layers (sweep::Grid) must derive cell seeds through this
/// instead of reusing the base seed verbatim: with a shared base seed
/// and the default seed_stride of 1, every cell would replay the exact
/// same replica seed sequence, silently correlating all cells of the
/// grid (their "independent" noise would be identical draws).  Single
/// jobs run directly through BatchRunner are unaffected -- replica
/// seeding stays `config.seed + seed_stride * r`.
[[nodiscard]] std::uint64_t derive_cell_seed(std::uint64_t base_seed, std::uint64_t cell_index);

/// Aggregated outcome of one BatchJob: summary statistics of the
/// paper's measured values over the job's replicas.
struct BatchResult {
  stats::Summary makespan;
  stats::Summary avg_wasted_time;
  stats::Summary speedup;
  stats::Summary chunks;
  /// Per-replica series, retained only with Options::keep_values (the
  /// raw material of distribution plots like paper Figure 9).
  std::vector<double> makespan_values;
  std::vector<double> wasted_values;
};

/// Batched experiment runner -- the single entry point the repro
/// experiments, tools and benches route "run this grid of
/// configurations N times each" through.
///
/// The replicas of all jobs are flattened into one index space and
/// claimed from a thread pool via support::parallel_for; every thread
/// keeps one mw::RunContext, so consecutive runs on a thread reuse the
/// simulation engine and serve-loop buffers instead of reallocating
/// them.  Results are deterministic: each replica is seeded purely by
/// (job, replica index), independent of thread scheduling.
class BatchRunner {
 public:
  struct Options {
    unsigned threads = 0;      ///< 0 = support::default_thread_count()
    std::size_t grain = 1;     ///< replicas claimed per atomic grab
    bool keep_values = false;  ///< retain per-replica series in the results
  };

  BatchRunner() = default;
  explicit BatchRunner(Options options) : options_(options) {}

  [[nodiscard]] const Options& options() const { return options_; }

  /// Run all jobs; result i aggregates jobs[i].
  [[nodiscard]] std::vector<BatchResult> run(std::span<const BatchJob> jobs) const;
  /// Convenience for a single job.
  [[nodiscard]] BatchResult run_one(const BatchJob& job) const;

 private:
  Options options_;
};

}  // namespace mw
