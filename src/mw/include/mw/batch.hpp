#pragma once

#include <cstdint>

namespace mw {

// The batched experiment runner itself lives in the execution layer
// (exec/batch.hpp: exec::BatchJob/BatchRunner run any exec::Backend).
// This header keeps the seed-derivation utilities the grid layers and
// published sweep records are pinned to.

/// The splitmix64 output function (Steele/Lea/Flood mix of a
/// golden-ratio-incremented counter).  A bijective avalanche mix: every
/// input bit affects every output bit.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Decorrelated per-cell base seed for cell `cell_index` of a grid
/// whose experiment declares `base_seed`: the cell_index-th output of a
/// splitmix64 stream seeded with base_seed.
///
/// Grid layers (sweep::Grid) must derive cell seeds through this
/// instead of reusing the base seed verbatim: with a shared base seed
/// and the default seed_stride of 1, every cell would replay the exact
/// same replica seed sequence, silently correlating all cells of the
/// grid (their "independent" noise would be identical draws).  Single
/// jobs run directly through exec::BatchRunner are unaffected --
/// replica seeding stays `config.seed + seed_stride * r`.
[[nodiscard]] std::uint64_t derive_cell_seed(std::uint64_t base_seed, std::uint64_t cell_index);

}  // namespace mw
