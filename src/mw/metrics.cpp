#include "mw/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace mw {

Metrics compute_metrics(const RunResult& result, const Config& config) {
  Metrics m;
  m.makespan = result.makespan;
  m.chunks = result.chunk_count;
  const double p = static_cast<double>(config.workers);

  // --- average wasted time (BOLD publication accounting) ---
  double wasted_sum = 0.0;
  for (const WorkerStats& w : result.workers) {
    wasted_sum += result.makespan - w.compute_time;
  }
  if (config.overhead_mode == OverheadMode::kAnalytic) {
    wasted_sum += config.params.h * static_cast<double>(result.chunk_count);
  }
  m.avg_wasted_time = wasted_sum / p;

  // --- speedup (TSS publication) ---
  if (result.makespan > 0.0) m.speedup = result.total_nominal_work / result.makespan;

  // --- cov of worker compute times / slowness (verification studies) ---
  double compute_sum = 0.0;
  for (const WorkerStats& w : result.workers) compute_sum += w.compute_time;
  if (compute_sum > 0.0) {
    const double mean = compute_sum / p;
    double sq = 0.0;
    for (const WorkerStats& w : result.workers) {
      const double d = w.compute_time - mean;
      sq += d * d;
    }
    m.cov = std::sqrt(sq / p) / mean;
  }
  if (result.total_nominal_work > 0.0) {
    m.slowness = p * result.makespan / result.total_nominal_work;
  }

  // --- degrees of scheduling overhead and load imbalancing ---
  // Per-chunk cost a worker experiences: the request and reply
  // transfers plus the master's service time in simulated mode.
  const double per_message = config.latency;  // star route: one link each way
  const double transfer =
      (static_cast<double>(config.request_bytes) + static_cast<double>(config.reply_bytes)) /
      config.bandwidth;
  const double service =
      config.overhead_mode == OverheadMode::kSimulated ? config.params.h : 0.0;
  const double per_chunk_cost = 2.0 * per_message + transfer + service;

  double overhead_sum = 0.0;
  double waiting_sum = 0.0;
  for (const WorkerStats& w : result.workers) {
    const double o = per_chunk_cost * static_cast<double>(w.chunks);
    overhead_sum += o;
    waiting_sum += std::max(0.0, result.makespan - w.compute_time - o);
  }
  if (result.makespan > 0.0) {
    m.overhead_degree = overhead_sum / result.makespan;
    m.imbalance_degree = waiting_sum / result.makespan;
  }
  return m;
}

}  // namespace mw
