#include "mw/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/table.hpp"

namespace mw {
namespace {

/// Reconstruct per-worker busy intervals [start, end) from the chunk
/// log: a chunk issued at t to worker w occupies w until w's next chunk
/// is issued, or -- for its last chunk -- until w's share of remaining
/// compute ends.  Under the null-network analytic model the issue time
/// equals the execution start, and a worker requests again immediately
/// on completion, so "issue to next issue" equals the execution span
/// for all but the final chunk, whose end is bounded by the makespan.
std::vector<std::vector<std::pair<double, double>>> busy_intervals(const RunResult& result) {
  std::vector<std::vector<std::pair<double, double>>> intervals(result.workers.size());
  for (const ChunkLogEntry& e : result.chunk_log) {
    auto& worker = intervals[e.pe];
    if (!worker.empty() && worker.back().second < 0.0) {
      worker.back().second = e.issued_at;  // close the previous chunk
    }
    worker.push_back({e.issued_at, -1.0});  // open until the next issue
  }
  for (std::size_t w = 0; w < intervals.size(); ++w) {
    if (!intervals[w].empty() && intervals[w].back().second < 0.0) {
      // Close the final chunk with the measured compute time.
      double known = 0.0;
      for (std::size_t i = 0; i + 1 < intervals[w].size(); ++i) {
        known += intervals[w][i].second - intervals[w][i].first;
      }
      const double last = std::max(0.0, result.workers[w].compute_time - known);
      intervals[w].back().second =
          std::min(result.makespan, intervals[w].back().first + last);
    }
  }
  return intervals;
}

}  // namespace

void write_chunk_csv(const RunResult& result, std::ostream& out) {
  if (result.chunk_log.empty() && result.chunk_count > 0) {
    throw std::invalid_argument(
        "write_chunk_csv: chunk log empty (set Config::record_chunk_log)");
  }
  out << "pe,first,size,issued_at\n";
  for (const ChunkLogEntry& e : result.chunk_log) {
    out << e.pe << ',' << e.first << ',' << e.size << ',' << support::fmt(e.issued_at, 9)
        << '\n';
  }
}

std::vector<WorkerUtilization> utilization(const RunResult& result) {
  std::vector<WorkerUtilization> out(result.workers.size());
  for (std::size_t w = 0; w < result.workers.size(); ++w) {
    out[w].pe = w;
    out[w].chunks = result.workers[w].chunks;
    out[w].tasks = result.workers[w].tasks;
    out[w].busy_fraction =
        result.makespan > 0.0 ? result.workers[w].compute_time / result.makespan : 0.0;
  }
  return out;
}

std::string ascii_gantt(const RunResult& result, std::size_t width) {
  if (width == 0) throw std::invalid_argument("ascii_gantt: zero width");
  if (result.chunk_log.empty() && result.chunk_count > 0) {
    throw std::invalid_argument("ascii_gantt: chunk log empty (set Config::record_chunk_log)");
  }
  const auto intervals = busy_intervals(result);
  const double span = result.makespan > 0.0 ? result.makespan : 1.0;
  const double bin = span / static_cast<double>(width);

  std::ostringstream os;
  os << "t = 0 " << std::string(width > 12 ? width - 12 : 0, ' ') << "t = "
     << support::fmt(result.makespan, 1) << "\n";
  for (std::size_t w = 0; w < intervals.size(); ++w) {
    os << 'w' << w << (w < 10 ? "  |" : " |");
    for (std::size_t col = 0; col < width; ++col) {
      const double lo = static_cast<double>(col) * bin;
      const double hi = lo + bin;
      double busy = 0.0;
      for (const auto& [start, end] : intervals[w]) {
        busy += std::max(0.0, std::min(end, hi) - std::max(start, lo));
      }
      os << (busy >= 0.5 * bin ? '#' : '.');
    }
    os << "|\n";
  }
  return os.str();
}

}  // namespace mw
