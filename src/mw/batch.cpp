#include "mw/batch.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>

#include "mw/metrics.hpp"
#include "mw/simulation.hpp"
#include "support/parallel_for.hpp"

namespace mw {
namespace {

/// LIFO pool of RunContexts shared by the batch's worker threads.  A
/// thread working through consecutive replicas gets the same context
/// back each time (engine/buffer reuse); the pool -- and all cached
/// engines -- is released when the batch ends, instead of pinning the
/// memory to thread lifetimes.  The lock is per replica, negligible
/// against a simulation run.
class ContextPool {
 public:
  [[nodiscard]] std::unique_ptr<RunContext> acquire() {
    {
      const std::scoped_lock lock(mutex_);
      if (!free_.empty()) {
        std::unique_ptr<RunContext> context = std::move(free_.back());
        free_.pop_back();
        return context;
      }
    }
    return std::make_unique<RunContext>();
  }

  void release(std::unique_ptr<RunContext> context) {
    const std::scoped_lock lock(mutex_);
    free_.push_back(std::move(context));
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<RunContext>> free_;
};

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_cell_seed(std::uint64_t base_seed, std::uint64_t cell_index) {
  // The (cell_index + 1)-th state of the splitmix64 counter stream
  // starting at base_seed, passed through the output mix.  Bijective in
  // cell_index for a fixed base seed, so cells never collide.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  return splitmix64(base_seed + (cell_index + 1) * kGolden);
}

std::vector<BatchResult> BatchRunner::run(std::span<const BatchJob> jobs) const {
  // Flatten (job, replica) into one index space so threads stay busy
  // across job boundaries (a grid's last job must not serialize).
  std::vector<std::size_t> offsets(jobs.size() + 1, 0);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (jobs[j].replicas == 0) {
      // Reject rather than return an all-zero Summary that renders as
      // a legitimate-looking makespan of 0.
      throw std::invalid_argument("BatchJob.replicas must be >= 1 (job " + std::to_string(j) +
                                  ")");
    }
    offsets[j + 1] = offsets[j] + jobs[j].replicas;
  }
  const std::size_t total = offsets.back();

  struct PerReplica {
    std::vector<double> makespan;
    std::vector<double> wasted;
    std::vector<double> speedup;
    std::vector<double> chunks;
  };
  std::vector<PerReplica> values(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    values[j].makespan.resize(jobs[j].replicas);
    values[j].wasted.resize(jobs[j].replicas);
    values[j].speedup.resize(jobs[j].replicas);
    values[j].chunks.resize(jobs[j].replicas);
  }

  ContextPool contexts;
  support::parallel_for(
      total,
      [&](std::size_t flat) {
        const std::size_t job_index = static_cast<std::size_t>(
            std::upper_bound(offsets.begin(), offsets.end(), flat) - offsets.begin() - 1);
        const BatchJob& job = jobs[job_index];
        const std::size_t replica = flat - offsets[job_index];

        Config cfg = job.config;
        cfg.seed = job.config.seed + job.seed_stride * replica;
        std::unique_ptr<RunContext> context = contexts.acquire();
        const RunResult result = run_simulation(cfg, *context);
        // A throwing run already invalidated the context's cached
        // engine, so returning it to the pool is always safe; if the
        // exception propagates the context is simply dropped.
        contexts.release(std::move(context));
        const Metrics metrics = compute_metrics(result, cfg);

        PerReplica& out = values[job_index];
        out.makespan[replica] = metrics.makespan;
        out.wasted[replica] = metrics.avg_wasted_time;
        out.speedup[replica] = metrics.speedup;
        out.chunks[replica] = static_cast<double>(metrics.chunks);
      },
      options_.threads, options_.grain);

  std::vector<BatchResult> results(jobs.size());
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    BatchResult& r = results[j];
    r.makespan = stats::summarize(values[j].makespan);
    r.avg_wasted_time = stats::summarize(values[j].wasted);
    r.speedup = stats::summarize(values[j].speedup);
    r.chunks = stats::summarize(values[j].chunks);
    if (options_.keep_values) {
      r.makespan_values = std::move(values[j].makespan);
      r.wasted_values = std::move(values[j].wasted);
    }
  }
  return results;
}

BatchResult BatchRunner::run_one(const BatchJob& job) const {
  return run(std::span<const BatchJob>(&job, 1)).front();
}

}  // namespace mw
