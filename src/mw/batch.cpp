#include "mw/batch.hpp"

namespace mw {

std::uint64_t splitmix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_cell_seed(std::uint64_t base_seed, std::uint64_t cell_index) {
  // The (cell_index + 1)-th state of the splitmix64 counter stream
  // starting at base_seed, passed through the output mix.  Bijective in
  // cell_index for a fixed base seed, so cells never collide.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  return splitmix64(base_seed + (cell_index + 1) * kGolden);
}

}  // namespace mw
