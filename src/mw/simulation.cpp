#include "mw/simulation.hpp"

#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dls/technique.hpp"
#include "simx/engine.hpp"
#include "simx/mailbox.hpp"
#include "workload/random_source.hpp"

namespace mw {
namespace {

/// Work request; doubles as the completion report for the worker's
/// previous chunk (a worker only asks again once it has finished), and
/// as the fail-stop announcement when `failed` is set.
struct WorkRequest {
  std::size_t worker = 0;
  std::size_t done_size = 0;      ///< tasks in the completed chunk (0 on first request)
  double done_exec_time = 0.0;    ///< measured execution time of that chunk
  bool failed = false;            ///< fail-stop announcement
  std::size_t failed_size = 0;    ///< outstanding (lost) tasks being returned
};

/// Chunk assignment; count == 0 is the finalization message.
struct WorkReply {
  double work_seconds = 0.0;  ///< aggregate nominal execution time
  std::size_t count = 0;
  std::size_t first = 0;      ///< first task index (chunk-log bookkeeping)
};

/// A contiguous range of unassigned task indices.  The master serves
/// chunks from a free-list of such ranges so that ranges reclaimed from
/// failed workers can be re-scheduled.
struct TaskRange {
  std::size_t first = 0;
  std::size_t count = 0;
};

struct Shared {
  const Config* config = nullptr;
  dls::Technique* technique = nullptr;
  simx::Mailbox<WorkRequest>* master_box = nullptr;
  std::vector<simx::Mailbox<WorkReply>*> worker_boxes;
  /// Task times of the current time step (owned by the master).
  std::vector<double> task_times;
  workload::RandomSource* rng = nullptr;

  // outputs
  double total_nominal_work = 0.0;
  std::size_t chunk_count = 0;
  std::size_t tasks_reclaimed = 0;
  std::vector<std::size_t> tasks_per_worker;
  std::vector<std::size_t> chunks_per_worker;
  std::vector<bool> worker_failed;
  std::vector<ChunkLogEntry> chunk_log;
  /// The sub-ranges of each worker's most recent chunk (a chunk served
  /// from a fragmented free-list may span several ranges); needed to
  /// reclaim a failed worker's outstanding tasks exactly.
  std::vector<std::vector<TaskRange>> last_served;
};

struct WorkerState {
  Shared* shared = nullptr;
  std::size_t id = 0;
  double failure_time = std::numeric_limits<double>::infinity();
};

/// Worker actor: request -> receive -> execute, until finalized ("When
/// it finishes, it sends again a work request message to the master",
/// paper Section II).  A worker whose fail-stop time arrives announces
/// the failure together with its unfinished chunk and stops.
simx::Actor worker_actor(simx::Context& ctx, WorkerState& st) {
  Shared& sh = *st.shared;
  const Config& cfg = *sh.config;
  WorkRequest request{st.id, 0, 0.0, false, 0};
  for (;;) {
    co_await sh.master_box->send_from(ctx, request, cfg.request_bytes);
    if (request.failed) break;  // announced; the master expects nothing more
    const WorkReply reply = co_await sh.worker_boxes[st.id]->recv(ctx);
    if (reply.count == 0) break;
    // Nominal seconds are defined against the reference speed; the
    // host's own (possibly slower/faster, possibly time-varying) speed
    // determines the actual duration.
    const double flops = reply.work_seconds * cfg.host_speed;
    const double t0 = ctx.now();
    if (t0 >= st.failure_time) {
      // Died while waiting: the whole chunk is lost.
      request = WorkRequest{st.id, 0, 0.0, true, reply.count};
      continue;
    }
    const double finish = ctx.host().finish_time(t0, flops);
    if (finish > st.failure_time) {
      // Dies mid-chunk: burn until the failure instant (the partial
      // results are lost -- fail-stop), then announce.
      co_await ctx.compute_for(st.failure_time - t0);
      request = WorkRequest{st.id, 0, 0.0, true, reply.count};
      continue;
    }
    co_await ctx.execute(flops);
    request = WorkRequest{st.id, reply.count, ctx.now() - t0, false, 0};
  }
}

/// Master-side free-list bookkeeping shared by the serve path.
class TaskPool {
 public:
  void reset(std::size_t n) { ranges_.assign(1, TaskRange{0, n}); }
  void give_back(TaskRange range) { ranges_.push_back(range); }

  /// Take `count` tasks (possibly spanning reclaimed fragments); sums
  /// their nominal times and returns the exact sub-ranges taken (so a
  /// failed chunk can be given back precisely).
  std::vector<TaskRange> take(std::size_t count, const std::vector<double>& task_times,
                              double& seconds) {
    std::vector<TaskRange> taken;
    std::size_t need = count;
    seconds = 0.0;
    while (need > 0) {
      if (ranges_.empty()) throw std::logic_error("TaskPool: free-list underflow");
      TaskRange& front = ranges_.front();
      const std::size_t take_now = std::min(front.count, need);
      for (std::size_t i = front.first; i < front.first + take_now; ++i) {
        seconds += task_times[i];
      }
      taken.push_back(TaskRange{front.first, take_now});
      front.first += take_now;
      front.count -= take_now;
      need -= take_now;
      if (front.count == 0) ranges_.pop_front();
    }
    return taken;
  }

 private:
  std::deque<TaskRange> ranges_;
};

/// Master actor: serves chunk requests with the DLS technique,
/// re-schedules chunks reclaimed from failed workers, and distributes
/// finalization messages at the end (paper Figure 1).
///
/// A worker whose request arrives when the current step has no
/// unscheduled tasks left is "parked": its request stays answered-once
/// by serving it at the start of the next time step, or by a
/// finalization message after the last step.
simx::Actor master_actor(simx::Context& ctx, Shared& sh) {
  const Config& cfg = *sh.config;
  dls::Technique& tech = *sh.technique;
  const std::size_t p = cfg.workers;
  std::vector<std::size_t> parked;  // workers waiting for the next step
  std::size_t alive = p;
  TaskPool pool;

  for (std::size_t step = 0; step < cfg.timesteps; ++step) {
    if (step > 0) {
      tech.start_new_timestep();
      sh.task_times = cfg.workload->generate(cfg.tasks, *sh.rng);
      for (double t : sh.task_times) sh.total_nominal_work += t;
    }
    pool.reset(cfg.tasks);
    std::size_t completed_tasks = 0;  // completed in this step
    std::deque<std::size_t> to_serve(parked.begin(), parked.end());
    parked.clear();

    while (completed_tasks < cfg.tasks) {
      if (!to_serve.empty()) {
        const std::size_t worker = to_serve.front();
        to_serve.pop_front();
        if (tech.remaining() == 0) {  // an earlier serve may have taken the rest
          parked.push_back(worker);
          continue;
        }
        if (cfg.overhead_mode == OverheadMode::kSimulated && cfg.params.h > 0.0) {
          co_await ctx.compute_for(cfg.params.h);
        }
        const std::size_t chunk = tech.next_chunk(dls::Request{worker, ctx.now()});
        double seconds = 0.0;
        sh.last_served[worker] = pool.take(chunk, sh.task_times, seconds);
        const std::size_t log_first = sh.last_served[worker].front().first;
        ++sh.chunk_count;
        ++sh.chunks_per_worker[worker];
        sh.tasks_per_worker[worker] += chunk;
        if (cfg.record_chunk_log) {
          sh.chunk_log.push_back(ChunkLogEntry{worker, log_first, chunk, ctx.now()});
        }
        co_await sh.worker_boxes[worker]->send_from(ctx, WorkReply{seconds, chunk, log_first},
                                                    cfg.reply_bytes);
        continue;
      }
      const WorkRequest request = co_await sh.master_box->recv(ctx);
      if (request.failed) {
        // Fail-stop: reclaim the outstanding chunk and re-schedule it.
        sh.worker_failed[request.worker] = true;
        --alive;
        if (request.failed_size > 0) {
          // Give the worker's outstanding chunk back to the pool and to
          // the technique's unscheduled count; the surviving workers
          // will be handed those tasks again.
          tech.reclaim(request.failed_size);
          for (const TaskRange& r : sh.last_served[request.worker]) pool.give_back(r);
          sh.tasks_per_worker[request.worker] -= request.failed_size;
          sh.tasks_reclaimed += request.failed_size;
        }
        if (alive == 0) {
          throw std::runtime_error("all workers failed with " +
                                   std::to_string(cfg.tasks - completed_tasks) +
                                   " tasks incomplete in step " + std::to_string(step));
        }
        continue;
      }
      if (request.done_size > 0) {
        completed_tasks += request.done_size;
        tech.on_chunk_complete(dls::ChunkFeedback{request.worker, request.done_size,
                                                  request.done_exec_time, ctx.now()});
      }
      if (completed_tasks >= cfg.tasks || tech.remaining() == 0) {
        parked.push_back(request.worker);
        continue;  // loop condition ends the step once all tasks confirmed
      }
      to_serve.push_back(request.worker);
    }
  }

  // All tasks of all steps completed: finalize the parked workers and
  // drain the final request of every other live worker ("On completion
  // of all tasks, the master sends finalization messages").
  std::vector<bool> finalized(p, false);
  std::size_t finalized_count = 0;
  for (const std::size_t worker : parked) {
    finalized[worker] = true;
    ++finalized_count;
    co_await sh.worker_boxes[worker]->send_from(ctx, WorkReply{0.0, 0, 0}, cfg.reply_bytes);
  }
  while (finalized_count < alive) {
    const WorkRequest request = co_await sh.master_box->recv(ctx);
    if (request.failed) {
      // A failure announced after its last completion: nothing to
      // reclaim (all tasks are done), the worker just leaves.
      sh.worker_failed[request.worker] = true;
      --alive;
      continue;
    }
    if (request.done_size > 0) {
      tech.on_chunk_complete(dls::ChunkFeedback{request.worker, request.done_size,
                                                request.done_exec_time, ctx.now()});
    }
    if (finalized[request.worker]) {
      throw std::logic_error("worker " + std::to_string(request.worker) +
                             " requested after finalization");
    }
    finalized[request.worker] = true;
    ++finalized_count;
    co_await sh.worker_boxes[request.worker]->send_from(ctx, WorkReply{0.0, 0, 0},
                                                        cfg.reply_bytes);
  }
}

void validate(const Config& cfg) {
  if (cfg.workers == 0) throw std::invalid_argument("Config.workers must be >= 1");
  if (cfg.tasks == 0) throw std::invalid_argument("Config.tasks must be >= 1");
  if (cfg.timesteps == 0) throw std::invalid_argument("Config.timesteps must be >= 1");
  if (!cfg.workload) throw std::invalid_argument("Config.workload is not set");
  if (!(cfg.host_speed > 0.0)) throw std::invalid_argument("Config.host_speed must be > 0");
  if (!cfg.worker_speed_factors.empty() && cfg.worker_speed_factors.size() != cfg.workers) {
    throw std::invalid_argument("Config.worker_speed_factors size must equal workers");
  }
  for (double f : cfg.worker_speed_factors) {
    if (!(f > 0.0)) throw std::invalid_argument("worker speed factors must be > 0");
  }
  if (!cfg.worker_speed_profiles.empty() && cfg.worker_speed_profiles.size() != cfg.workers) {
    throw std::invalid_argument("Config.worker_speed_profiles size must equal workers");
  }
  for (const simx::SpeedProfile& profile : cfg.worker_speed_profiles) profile.validate();
  if (!cfg.worker_failure_times.empty() && cfg.worker_failure_times.size() != cfg.workers) {
    throw std::invalid_argument("Config.worker_failure_times size must equal workers");
  }
  for (double t : cfg.worker_failure_times) {
    if (t < 0.0) throw std::invalid_argument("worker failure times must be >= 0");
  }
}

}  // namespace

RunResult run_simulation(const Config& config) {
  validate(config);

  simx::Platform platform;
  platform.add_host("master", config.host_speed);
  for (std::size_t i = 0; i < config.workers; ++i) {
    const double factor =
        config.worker_speed_factors.empty() ? 1.0 : config.worker_speed_factors[i];
    const std::string host = "w" + std::to_string(i);
    simx::Host& worker_host = platform.add_host(host, config.host_speed * factor);
    if (!config.worker_speed_profiles.empty()) {
      worker_host.set_speed_profile(config.worker_speed_profiles[i]);
    }
    platform.add_link("l" + std::to_string(i), config.bandwidth, config.latency);
    platform.add_route("master", host, {"l" + std::to_string(i)});
  }

  simx::Engine engine(std::move(platform));

  dls::Params params = config.params;
  params.p = config.workers;
  params.n = config.tasks;
  const auto technique = dls::make_technique(config.technique, params);

  const std::unique_ptr<workload::RandomSource> rng =
      config.use_rand48
          ? std::unique_ptr<workload::RandomSource>(std::make_unique<workload::Rand48Source>(
                static_cast<std::uint32_t>(config.seed)))
          : std::unique_ptr<workload::RandomSource>(
                std::make_unique<workload::XoshiroSource>(config.seed));

  Shared shared;
  shared.config = &config;
  shared.technique = technique.get();
  shared.rng = rng.get();
  shared.tasks_per_worker.assign(config.workers, 0);
  shared.chunks_per_worker.assign(config.workers, 0);
  shared.worker_failed.assign(config.workers, false);
  shared.last_served.assign(config.workers, {});
  shared.task_times = config.workload->generate(config.tasks, *rng);
  for (double t : shared.task_times) shared.total_nominal_work += t;

  simx::Mailbox<WorkRequest> master_box(engine, "master", engine.platform().host("master"));
  shared.master_box = &master_box;
  std::vector<std::unique_ptr<simx::Mailbox<WorkReply>>> worker_boxes;
  for (std::size_t i = 0; i < config.workers; ++i) {
    worker_boxes.push_back(std::make_unique<simx::Mailbox<WorkReply>>(
        engine, "w" + std::to_string(i), engine.platform().host("w" + std::to_string(i))));
    shared.worker_boxes.push_back(worker_boxes.back().get());
  }

  engine.spawn("master", engine.platform().host("master"),
               [&shared](simx::Context& ctx) { return master_actor(ctx, shared); });
  std::vector<WorkerState> worker_states(config.workers);
  for (std::size_t i = 0; i < config.workers; ++i) {
    worker_states[i].shared = &shared;
    worker_states[i].id = i;
    if (!config.worker_failure_times.empty()) {
      worker_states[i].failure_time = config.worker_failure_times[i];
    }
    engine.spawn("worker" + std::to_string(i), engine.platform().host("w" + std::to_string(i)),
                 [&worker_states, i](simx::Context& ctx) {
                   return worker_actor(ctx, worker_states[i]);
                 });
  }

  const simx::SimTime makespan = engine.run();
  const std::vector<std::string> stuck = engine.unfinished_actors();
  if (!stuck.empty()) {
    throw std::runtime_error("simulation deadlock: actor '" + stuck.front() +
                             "' never finished");
  }

  RunResult result;
  result.makespan = makespan;
  result.total_nominal_work = shared.total_nominal_work;
  result.chunk_count = shared.chunk_count;
  result.tasks_reclaimed = shared.tasks_reclaimed;
  result.chunk_log = std::move(shared.chunk_log);
  const std::vector<simx::ActorAccounting> accounting = engine.accounting();
  result.master_busy_time = accounting.front().computing;
  result.workers.resize(config.workers);
  for (std::size_t i = 0; i < config.workers; ++i) {
    const simx::ActorAccounting& acc = accounting[i + 1];  // spawn order: master first
    WorkerStats& w = result.workers[i];
    w.compute_time = acc.computing;
    w.wait_time = acc.waiting + (makespan - acc.finished_at);  // idle after finalization too
    w.comm_time = acc.communicating;
    w.tasks = shared.tasks_per_worker[i];
    w.chunks = shared.chunks_per_worker[i];
    w.failed = shared.worker_failed[i];
  }
  return result;
}

}  // namespace mw
