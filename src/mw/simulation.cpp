#include "mw/simulation.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "dls/technique.hpp"
#include "simx/engine.hpp"
#include "simx/mailbox.hpp"
#include "support/small_vector.hpp"
#include "workload/random_source.hpp"

namespace mw {
namespace {

/// Work request; doubles as the completion report for the worker's
/// previous chunk (a worker only asks again once it has finished), and
/// as the fail-stop announcement when `failed` is set.
struct WorkRequest {
  std::size_t worker = 0;
  std::size_t done_size = 0;      ///< tasks in the completed chunk (0 on first request)
  double done_exec_time = 0.0;    ///< measured execution time of that chunk
  bool failed = false;            ///< fail-stop announcement
  std::size_t failed_size = 0;    ///< outstanding (lost) tasks being returned
};

/// Chunk assignment; count == 0 is the finalization message.
struct WorkReply {
  double work_seconds = 0.0;  ///< aggregate nominal execution time
  std::size_t count = 0;
  std::size_t first = 0;      ///< first task index (chunk-log bookkeeping)
};

/// A contiguous range of unassigned task indices.  The master serves
/// chunks from a free-list of such ranges so that ranges reclaimed from
/// failed workers can be re-scheduled.
struct TaskRange {
  std::size_t first = 0;
  std::size_t count = 0;
};

/// The sub-ranges of one worker's most recent chunk.  Chunks span a
/// single range except after failures fragment the free list, so two
/// inline slots make the common case allocation-free.
using RangeList = support::SmallVector<TaskRange, 2>;

/// Master-side free-list bookkeeping shared by the serve path.
class TaskPool {
 public:
  void reset(std::size_t n) {
    ranges_.clear();
    head_ = 0;
    ranges_.push_back(TaskRange{0, n});
  }
  void give_back(TaskRange range) { ranges_.push_back(range); }

  /// Take `count` tasks from the front of the free list (possibly
  /// spanning reclaimed fragments); their nominal seconds come from the
  /// prefix-sum index, so the cost is O(#ranges touched) rather than
  /// O(chunk size).  The exact sub-ranges taken are appended to `taken`
  /// (cleared first), so a failed chunk can be given back precisely.
  void take(std::size_t count, const std::vector<double>& prefix, double& seconds,
            RangeList& taken) {
    taken.clear();
    seconds = 0.0;
    std::size_t need = count;
    while (need > 0) {
      if (head_ == ranges_.size()) throw std::logic_error("TaskPool: free-list underflow");
      TaskRange& front = ranges_[head_];
      const std::size_t take_now = std::min(front.count, need);
      seconds += prefix[front.first + take_now] - prefix[front.first];
      taken.push_back(TaskRange{front.first, take_now});
      front.first += take_now;
      front.count -= take_now;
      need -= take_now;
      if (front.count == 0 && ++head_ == ranges_.size()) {
        ranges_.clear();  // compact when drained; capacity is kept
        head_ = 0;
      }
    }
  }

 private:
  // FIFO of free ranges: consumed at head_, reclaimed fragments
  // appended at the back and reused in arrival order without
  // re-scanning the list.
  std::vector<TaskRange> ranges_;
  std::size_t head_ = 0;
};

/// Reusable FIFO of worker indices (the serve queue; bounded by p).
class IndexQueue {
 public:
  void clear() {
    items_.clear();
    head_ = 0;
  }
  [[nodiscard]] bool empty() const { return head_ == items_.size(); }
  void push(std::size_t v) { items_.push_back(v); }
  std::size_t pop() {
    const std::size_t v = items_[head_++];
    if (head_ == items_.size()) {
      items_.clear();
      head_ = 0;
    }
    return v;
  }

 private:
  std::vector<std::size_t> items_;
  std::size_t head_ = 0;
};

struct Shared;

struct WorkerState {
  Shared* shared = nullptr;
  std::size_t id = 0;
  double failure_time = std::numeric_limits<double>::infinity();
};

/// What the platform of a cached engine was built from; runs with an
/// equal shape reuse the engine (and its hosts/links/routes) outright.
struct PlatformShape {
  std::size_t workers = 0;
  double host_speed = 0.0;
  double bandwidth = 0.0;
  double latency = 0.0;
  std::vector<double> factors;
  std::vector<simx::SpeedProfile> profiles;

  /// Allocation-free equality against a Config (the cache-hit test
  /// must not copy the Config's vectors just to compare them).
  [[nodiscard]] bool matches(const Config& config) const {
    return workers == config.workers && host_speed == config.host_speed &&
           bandwidth == config.bandwidth && latency == config.latency &&
           factors == config.worker_speed_factors &&
           profiles == config.worker_speed_profiles;
  }
};

}  // namespace

/// All reusable run state.  Vectors are assign()ed/clear()ed per run so
/// their capacity survives; the engine survives whole when the platform
/// shape matches.
struct RunContext::Impl {
  // Engine cache (platform construction is the only per-run cost that
  // grows with the worker count).
  std::optional<simx::Engine> engine;
  PlatformShape shape;
  std::optional<simx::Mailbox<WorkRequest>> master_box;
  std::deque<simx::Mailbox<WorkReply>> worker_boxes;  // Mailbox is immovable
  std::vector<simx::Mailbox<WorkReply>*> worker_box_ptrs;

  // Per-worker route costs, computed once per run instead of per chunk.
  std::vector<simx::SimTime> request_delay;
  std::vector<simx::SimTime> reply_delay;

  // Serve-loop buffers.
  std::vector<double> task_times;  ///< current step's task times
  std::vector<double> prefix;      ///< prefix[i] = sum of task_times[0..i)
  TaskPool pool;
  IndexQueue to_serve;
  std::vector<std::size_t> parked;
  std::vector<std::size_t> tasks_per_worker;
  std::vector<std::size_t> chunks_per_worker;
  std::vector<char> worker_failed;
  std::vector<char> finalized;
  std::vector<RangeList> last_served;
  std::vector<ChunkLogEntry> chunk_log;
  std::vector<ServedRangeEntry> range_log;
  std::vector<WorkerState> worker_states;
};

RunContext::RunContext() : impl_(std::make_unique<Impl>()) {}
RunContext::~RunContext() = default;

namespace {

struct Shared {
  const Config* config = nullptr;
  dls::Technique* technique = nullptr;
  workload::RandomSource* rng = nullptr;
  RunContext::Impl* buf = nullptr;

  // scalar outputs
  double total_nominal_work = 0.0;
  std::size_t chunk_count = 0;
  std::size_t tasks_reclaimed = 0;
};

/// Rebuild the prefix-sum index over the current task times and extend
/// the running total-nominal-work accumulator (kept as its own
/// left-to-right sum so the reported total is independent of how chunks
/// later partition the step).
void rebuild_prefix(Shared& sh) {
  const std::vector<double>& t = sh.buf->task_times;
  std::vector<double>& prefix = sh.buf->prefix;
  prefix.resize(t.size() + 1);
  prefix[0] = 0.0;
  double run = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sh.total_nominal_work += t[i];
    run += t[i];
    prefix[i + 1] = run;
  }
}

/// Worker actor: request -> receive -> execute, until finalized ("When
/// it finishes, it sends again a work request message to the master",
/// paper Section II).  A worker whose fail-stop time arrives announces
/// the failure together with its unfinished chunk and stops.
simx::Actor worker_actor(simx::Context& ctx, WorkerState& st) {
  Shared& sh = *st.shared;
  RunContext::Impl& buf = *sh.buf;
  const Config& cfg = *sh.config;
  const simx::SimTime request_delay = buf.request_delay[st.id];
  simx::Mailbox<WorkRequest>& master_box = *buf.master_box;
  simx::Mailbox<WorkReply>& reply_box = *buf.worker_box_ptrs[st.id];
  co_await master_box.send_from_delayed(ctx, WorkRequest{st.id, 0, 0.0, false, 0},
                                        request_delay);
  WorkReply reply = co_await reply_box.recv(ctx);
  for (;;) {
    if (reply.count == 0) break;
    // Nominal seconds are defined against the reference speed; the
    // host's own (possibly slower/faster, possibly time-varying) speed
    // determines the actual duration.
    const double flops = reply.work_seconds * cfg.host_speed;
    const double t0 = ctx.now();
    if (t0 >= st.failure_time) {
      // Died while waiting: the whole chunk is lost.  Announce and stop;
      // the master expects nothing more.
      co_await master_box.send_from_delayed(
          ctx, WorkRequest{st.id, 0, 0.0, true, reply.count}, request_delay);
      break;
    }
    double finish = std::numeric_limits<double>::infinity();
    try {
      finish = ctx.host().finish_time(t0, flops);
    } catch (const std::runtime_error&) {
      // The host's remaining capacity is zero forever.  With a finite
      // fail-stop time the chunk is simply lost at that instant (the
      // failure lands inside the stopped window); without one the
      // configuration really is unrunnable.
      if (st.failure_time == std::numeric_limits<double>::infinity()) throw;
    }
    if (finish > st.failure_time) {
      // Dies mid-chunk: burn until the failure instant (the partial
      // results are lost -- fail-stop), then announce and stop.
      co_await ctx.compute_for(st.failure_time - t0);
      co_await master_box.send_from_delayed(
          ctx, WorkRequest{st.id, 0, 0.0, true, reply.count}, request_delay);
      break;
    }
    // Fused execute + next request + reply wait: one simulation event
    // and one suspension per chunk instead of two events and three
    // suspensions (the wake-at-finish, send-completion, and
    // recv-suspension points were always back to back).  `finish - t0`,
    // the request's arrival time, and every accrual instant are
    // bit-identical to the unfused
    // `co_await ctx.execute(flops); ...send_from_delayed(...); recv()`.
    co_await master_box.send_from_after(
        ctx, WorkRequest{st.id, reply.count, finish - t0, false, 0}, finish, request_delay);
    reply = co_await reply_box.recv(ctx);
  }
}

/// Master actor: serves chunk requests with the DLS technique,
/// re-schedules chunks reclaimed from failed workers, and distributes
/// finalization messages at the end (paper Figure 1).
///
/// A worker whose request arrives when the current step has no
/// unscheduled tasks left is "parked": its request stays answered-once
/// by serving it at the start of the next time step, or by a
/// finalization message after the last step.
simx::Actor master_actor(simx::Context& ctx, Shared& sh) {
  const Config& cfg = *sh.config;
  dls::Technique& tech = *sh.technique;
  RunContext::Impl& buf = *sh.buf;
  const std::size_t p = cfg.workers;
  std::vector<std::size_t>& parked = buf.parked;  // workers waiting for the next step
  IndexQueue& to_serve = buf.to_serve;
  TaskPool& pool = buf.pool;
  std::size_t alive = p;

  for (std::size_t step = 0; step < cfg.timesteps; ++step) {
    if (step > 0) {
      tech.start_new_timestep();
      cfg.workload->generate_into(buf.task_times, cfg.tasks, *sh.rng);
      rebuild_prefix(sh);
    }
    pool.reset(cfg.tasks);
    std::size_t completed_tasks = 0;  // completed in this step
    to_serve.clear();
    for (const std::size_t worker : parked) to_serve.push(worker);
    parked.clear();

    while (completed_tasks < cfg.tasks) {
      if (!to_serve.empty()) {
        const std::size_t worker = to_serve.pop();
        if (tech.remaining() == 0) {  // an earlier serve may have taken the rest
          parked.push_back(worker);
          continue;
        }
        // The scheduling-overhead window [now, issue_at) is charged as
        // master computing time by the fused send below; issue_at is the
        // exact clock value the old `co_await ctx.compute_for(h)` would
        // have woken at, so the technique sees identical request times.
        const simx::SimTime issue_at =
            (cfg.overhead_mode == OverheadMode::kSimulated && cfg.params.h > 0.0)
                ? ctx.now() + cfg.params.h
                : ctx.now();
        const std::size_t chunk = tech.next_chunk(dls::Request{worker, issue_at});
        double seconds = 0.0;
        RangeList& served = buf.last_served[worker];
        pool.take(chunk, buf.prefix, seconds, served);
        const std::size_t log_first = served.front().first;
        ++sh.chunk_count;
        ++buf.chunks_per_worker[worker];
        buf.tasks_per_worker[worker] += chunk;
        if (cfg.record_chunk_log) {
          for (const TaskRange& r : served) {
            buf.range_log.push_back(ServedRangeEntry{buf.chunk_log.size(), r.first, r.count});
          }
          buf.chunk_log.push_back(ChunkLogEntry{worker, log_first, chunk, issue_at, seconds});
        }
        // Fused overhead-compute + reply send: one event per served
        // chunk instead of two.
        co_await buf.worker_box_ptrs[worker]->send_from_after(
            ctx, WorkReply{seconds, chunk, log_first}, issue_at, buf.reply_delay[worker]);
        continue;
      }
      const WorkRequest request = co_await buf.master_box->recv(ctx);
      if (request.failed) {
        // Fail-stop: reclaim the outstanding chunk and re-schedule it.
        buf.worker_failed[request.worker] = 1;
        --alive;
        if (request.failed_size > 0) {
          // Give the worker's outstanding chunk back to the pool and to
          // the technique's unscheduled count; the surviving workers
          // will be handed those tasks again.
          tech.reclaim(request.failed_size);
          for (const TaskRange& r : buf.last_served[request.worker]) pool.give_back(r);
          buf.tasks_per_worker[request.worker] -= request.failed_size;
          sh.tasks_reclaimed += request.failed_size;
          // Workers parked after seeing remaining() == 0 must come back
          // for the reclaimed tasks, or the step deadlocks when the
          // failed worker held the only outstanding chunk.
          for (const std::size_t worker : parked) to_serve.push(worker);
          parked.clear();
        }
        if (alive == 0) {
          throw std::runtime_error("all workers failed with " +
                                   std::to_string(cfg.tasks - completed_tasks) +
                                   " tasks incomplete in step " + std::to_string(step));
        }
        continue;
      }
      if (request.done_size > 0) {
        completed_tasks += request.done_size;
        tech.on_chunk_complete(dls::ChunkFeedback{request.worker, request.done_size,
                                                  request.done_exec_time, ctx.now()});
      }
      if (completed_tasks >= cfg.tasks || tech.remaining() == 0) {
        parked.push_back(request.worker);
        continue;  // loop condition ends the step once all tasks confirmed
      }
      to_serve.push(request.worker);
    }
  }

  // All tasks of all steps completed: finalize the parked workers and
  // drain the final request of every other live worker ("On completion
  // of all tasks, the master sends finalization messages").
  buf.finalized.assign(p, 0);
  std::size_t finalized_count = 0;
  for (const std::size_t worker : parked) {
    buf.finalized[worker] = 1;
    ++finalized_count;
    co_await buf.worker_box_ptrs[worker]->send_from_delayed(ctx, WorkReply{0.0, 0, 0},
                                                            buf.reply_delay[worker]);
  }
  while (finalized_count < alive) {
    const WorkRequest request = co_await buf.master_box->recv(ctx);
    if (request.failed) {
      // A failure announced after its last completion: nothing to
      // reclaim (all tasks are done), the worker just leaves.
      buf.worker_failed[request.worker] = 1;
      --alive;
      continue;
    }
    if (request.done_size > 0) {
      tech.on_chunk_complete(dls::ChunkFeedback{request.worker, request.done_size,
                                                request.done_exec_time, ctx.now()});
    }
    if (buf.finalized[request.worker]) {
      throw std::logic_error("worker " + std::to_string(request.worker) +
                             " requested after finalization");
    }
    buf.finalized[request.worker] = 1;
    ++finalized_count;
    co_await buf.worker_box_ptrs[request.worker]->send_from_delayed(
        ctx, WorkReply{0.0, 0, 0}, buf.reply_delay[request.worker]);
  }
}

void validate(const Config& cfg) {
  if (cfg.workers == 0) throw std::invalid_argument("Config.workers must be >= 1");
  if (cfg.tasks == 0) throw std::invalid_argument("Config.tasks must be >= 1");
  if (cfg.timesteps == 0) throw std::invalid_argument("Config.timesteps must be >= 1");
  if (!cfg.workload) throw std::invalid_argument("Config.workload is not set");
  if (!(cfg.host_speed > 0.0)) throw std::invalid_argument("Config.host_speed must be > 0");
  if (!cfg.worker_speed_factors.empty() && cfg.worker_speed_factors.size() != cfg.workers) {
    throw std::invalid_argument("Config.worker_speed_factors size must equal workers");
  }
  for (double f : cfg.worker_speed_factors) {
    if (!(f > 0.0)) throw std::invalid_argument("worker speed factors must be > 0");
  }
  if (!cfg.worker_speed_profiles.empty() && cfg.worker_speed_profiles.size() != cfg.workers) {
    throw std::invalid_argument("Config.worker_speed_profiles size must equal workers");
  }
  for (const simx::SpeedProfile& profile : cfg.worker_speed_profiles) profile.validate();
  if (!cfg.worker_failure_times.empty() && cfg.worker_failure_times.size() != cfg.workers) {
    throw std::invalid_argument("Config.worker_failure_times size must equal workers");
  }
  for (double t : cfg.worker_failure_times) {
    if (t < 0.0) throw std::invalid_argument("worker failure times must be >= 0");
  }
}

}  // namespace

RunResult run_simulation(const Config& config, RunContext& context) {
  validate(config);
  RunContext::Impl& buf = *context.impl_;
  const std::size_t p = config.workers;

  // A run that throws can leave actors stuck and mailboxes non-empty;
  // drop the cached engine in that case so the next run starts clean.
  struct CacheGuard {
    RunContext::Impl* buf;
    bool ok = false;
    ~CacheGuard() {
      if (ok) return;
      buf->master_box.reset();
      buf->worker_boxes.clear();
      buf->worker_box_ptrs.clear();
      buf->engine.reset();
    }
  } guard{&buf};

  if (!buf.engine.has_value() || !buf.shape.matches(config)) {
    buf.master_box.reset();
    buf.worker_boxes.clear();
    buf.worker_box_ptrs.clear();
    buf.engine.reset();

    simx::Platform platform;
    const simx::Host& master = platform.add_host("master", config.host_speed);
    for (std::size_t i = 0; i < p; ++i) {
      const double factor =
          config.worker_speed_factors.empty() ? 1.0 : config.worker_speed_factors[i];
      simx::Host& worker_host =
          platform.add_host(simx::indexed_name("w", i), config.host_speed * factor);
      if (!config.worker_speed_profiles.empty()) {
        worker_host.set_speed_profile(config.worker_speed_profiles[i]);
      }
      const simx::Link& link =
          platform.add_link(simx::indexed_name("l", i), config.bandwidth, config.latency);
      // Index-based route registration: construction does no name
      // lookups (the add_host/add_link duplicate checks are the only
      // string comparisons left on this path).
      platform.add_route(master, worker_host, link);
    }
    buf.engine.emplace(std::move(platform));
    buf.shape = PlatformShape{p,
                              config.host_speed,
                              config.bandwidth,
                              config.latency,
                              config.worker_speed_factors,
                              config.worker_speed_profiles};
  } else {
    buf.engine->reset();
  }
  simx::Engine& engine = *buf.engine;
  simx::Platform& plat = engine.platform();
  simx::Host& master_host = plat.host_at(0);

  if (!buf.master_box.has_value()) buf.master_box.emplace(engine, "master", master_host);
  if (buf.worker_boxes.size() != p) {
    buf.worker_boxes.clear();
    buf.worker_box_ptrs.clear();
    for (std::size_t i = 0; i < p; ++i) {
      buf.worker_boxes.emplace_back(engine, simx::indexed_name("w", i), plat.host_at(i + 1));
      buf.worker_box_ptrs.push_back(&buf.worker_boxes.back());
    }
  }

  buf.request_delay.resize(p);
  buf.reply_delay.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    simx::Host& worker_host = plat.host_at(i + 1);
    buf.request_delay[i] = plat.comm_time(worker_host, master_host, config.request_bytes);
    buf.reply_delay[i] = plat.comm_time(master_host, worker_host, config.reply_bytes);
  }

  dls::Params params = config.params;
  params.p = p;
  params.n = config.tasks;
  const auto technique = dls::make_technique(config.technique, params);

  const std::unique_ptr<workload::RandomSource> rng =
      config.use_rand48
          ? std::unique_ptr<workload::RandomSource>(std::make_unique<workload::Rand48Source>(
                static_cast<std::uint32_t>(config.seed)))
          : std::unique_ptr<workload::RandomSource>(
                std::make_unique<workload::XoshiroSource>(config.seed));

  Shared shared;
  shared.config = &config;
  shared.technique = technique.get();
  shared.rng = rng.get();
  shared.buf = &buf;
  buf.tasks_per_worker.assign(p, 0);
  buf.chunks_per_worker.assign(p, 0);
  buf.worker_failed.assign(p, 0);
  buf.last_served.resize(p);
  for (RangeList& ranges : buf.last_served) ranges.clear();
  buf.parked.clear();
  buf.to_serve.clear();
  buf.chunk_log.clear();
  buf.range_log.clear();
  if (config.record_chunk_log) {
    // The chunk count is technique-dependent and unknown up front;
    // seed the log with a capacity that covers typical non-SS runs.
    const std::size_t estimate =
        std::min(config.tasks * config.timesteps, 64 + 16 * p * config.timesteps);
    buf.chunk_log.reserve(estimate);
    buf.range_log.reserve(estimate);
  }
  config.workload->generate_into(buf.task_times, config.tasks, *rng);
  rebuild_prefix(shared);

  buf.worker_states.assign(p, WorkerState{});
  for (std::size_t i = 0; i < p; ++i) {
    buf.worker_states[i].shared = &shared;
    buf.worker_states[i].id = i;
    if (!config.worker_failure_times.empty()) {
      buf.worker_states[i].failure_time = config.worker_failure_times[i];
    }
  }

  engine.reserve_events(2 * p + 16);
  engine.spawn("master", master_host,
               [&shared](simx::Context& ctx) { return master_actor(ctx, shared); });
  for (std::size_t i = 0; i < p; ++i) {
    engine.spawn(simx::indexed_name("worker", i), plat.host_at(i + 1),
                 [&buf, i](simx::Context& ctx) {
                   return worker_actor(ctx, buf.worker_states[i]);
                 });
  }

  const simx::SimTime makespan = engine.run();
  if (!engine.all_finished()) {
    throw std::runtime_error("simulation deadlock: actor '" +
                             engine.unfinished_actors().front() + "' never finished");
  }

  RunResult result;
  result.makespan = makespan;
  result.total_nominal_work = shared.total_nominal_work;
  result.chunk_count = shared.chunk_count;
  result.tasks_reclaimed = shared.tasks_reclaimed;
  result.chunk_log = std::move(buf.chunk_log);
  result.range_log = std::move(buf.range_log);
  result.master_busy_time = engine.actor_times(0).computing;
  result.workers.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    const simx::ActorTimes acc = engine.actor_times(i + 1);  // spawn order: master first
    WorkerStats& w = result.workers[i];
    w.compute_time = acc.computing;
    w.wait_time = acc.waiting + (makespan - acc.finished_at);  // idle after finalization too
    w.comm_time = acc.communicating;
    w.tasks = buf.tasks_per_worker[i];
    w.chunks = buf.chunks_per_worker[i];
    w.failed = buf.worker_failed[i] != 0;
  }
  guard.ok = true;
  return result;
}

RunResult run_simulation(const Config& config) {
  RunContext context;
  return run_simulation(config, context);
}

}  // namespace mw
